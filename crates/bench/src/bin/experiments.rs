//! The experiment harness: regenerates every experiment in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p rrq-bench --bin experiments            # all
//! cargo run --release -p rrq-bench --bin experiments -- e3 e9   # a subset
//! cargo run --release -p rrq-bench --bin experiments -- --quick # smaller sweeps
//! ```
//!
//! Each experiment prints a markdown table; EXPERIMENTS.md records the
//! paper-claim vs. the measured shape.

use rrq_bench::fmt_rate;
use rrq_core::api::{LocalQm, QmApi};
use rrq_core::app_lock::AppLockTable;
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::client::ReplyProcessor;
use rrq_core::conversation::IoLog;
use rrq_core::designs::{self, DesignWorkload};
use rrq_core::device::TicketPrinter;
use rrq_core::pipeline::{Pipeline, Serializability, StageFn, StageResult};
use rrq_core::remote::{QmRpcServer, RemoteQm};
use rrq_core::request::{Reply, Request};
use rrq_core::rid::Rid;
use rrq_core::server::{spawn_pool, Handler, HandlerError, HandlerOutcome};
use rrq_net::NetworkBus;
use rrq_qm::meta::{OrderingMode, QueueMeta};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_sim::driver::{ClientCrashDriver, CrashPoint};
use rrq_sim::node::ServerNodeSim;
use rrq_sim::oracle::EffectLedger;
use rrq_sim::schedule::CrashSchedule;
use rrq_storage::codec::Encode;
use rrq_storage::disk::{CrashStyle, Disk, LatencyDisk, SimDisk};
use rrq_storage::kv::{KvOptions, KvStore};
use rrq_txn::{LockKey, LockMode};
use rrq_workload::arrivals::{bursty_arrivals, ZipfSelector};
use rrq_workload::bank::{self, Transfer};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scale {
    /// Multiplier applied to request counts (quick mode halves twice).
    n: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = Scale {
        n: if quick { 1 } else { 4 },
    };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let run = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);

    println!("# Recoverable-request experiments (quick={quick})\n");
    if run("e1") {
        e1_client_resync(&scale);
    }
    if run("e2") {
        e2_queue_ops();
    }
    if run("e3") {
        e3_design_comparison(&scale);
    }
    if run("e4") {
        e4_end_to_end(&scale);
    }
    if run("e5") {
        e5_multi_txn(&scale);
    }
    if run("e6") {
        e6_request_serializability(&scale);
    }
    if run("e7") {
        e7_cancellation(&scale);
    }
    if run("e8") {
        e8_interactive(&scale);
    }
    if run("e9") {
        e9_dequeue_ordering(&scale);
    }
    if run("e10") {
        e10_registration(&scale);
    }
    if run("e11") {
        e11_burst_and_load_sharing(&scale);
    }
    if run("e12") {
        e12_send_modes(&scale);
    }
    if run("e13") {
        e13_storage(&scale);
    }
    if run("e14") {
        e14_testable_device(&scale);
    }
    if run("e16") {
        e16_group_commit_and_index(&scale);
    }
    if run("e17") {
        e17_observability(&scale);
    }
    if run("e18") {
        e18_shard_contention(&scale, smoke);
    }
    if run("e19") {
        e19_partitioned_wal(&scale, smoke);
    }
    if run("e20") {
        e20_combining_dequeue(&scale, smoke);
    }
    if run("e21") {
        e21_partition_scaling(&scale, smoke);
    }
    if run("e22") {
        e22_planned_crossover(&scale, smoke);
    }
}

fn mk_repo(name: &str, queues: &[&str]) -> Arc<Repository> {
    let repo = Arc::new(Repository::create(name).unwrap());
    for q in queues {
        repo.create_queue_defaults(q).unwrap();
    }
    repo
}

fn mk_clerk(repo: &Arc<Repository>, client: &str) -> Clerk {
    let api = Arc::new(LocalQm::new(Arc::clone(repo)));
    let mut cfg = ClerkConfig::new(client, "req");
    cfg.reply_queue = format!("reply.{client}");
    cfg.receive_block = Duration::from_secs(20);
    Clerk::new(api, cfg)
}

// ======================================================================
// E1 — Fig 1/2: client resynchronization under crash-probability sweep
// ======================================================================
fn e1_client_resync(scale: &Scale) {
    println!("## E1 — client resynchronization (Figs 1–2)\n");
    println!("| crash prob | requests | incarnations | resync recv | resync reproc | already done | dup prints | exactly-once |");
    println!("|-----------:|---------:|-------------:|------------:|--------------:|-------------:|-----------:|:-------------|");
    let n = 10 * scale.n;
    for prob in [0.0, 0.25, 0.5, 0.9] {
        let name = format!("e1-{}", (prob * 100.0) as u32);
        let repo = mk_repo(&name, &["req", "reply.c"]);
        let handler = EffectLedger::instrument(Arc::new(|_ctx, req: &Request| {
            Ok(HandlerOutcome::Reply(
                format!("r{}", req.rid.serial).into_bytes(),
            ))
        }));
        let (_s, handles, stop) = spawn_pool(&repo, "req", 2, handler).unwrap();
        let schedule = CrashSchedule::random(n, prob, 42);
        let driver = ClientCrashDriver::new(|| mk_clerk(&repo, "c"), "op");
        let mut printer = TicketPrinter::new();
        let report = driver
            .run(n, |s| schedule.get(s), |s| vec![s as u8], &mut printer)
            .unwrap();
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        let expected: Vec<Rid> = (1..=n).map(|s| Rid::new("c", s)).collect();
        let violations = EffectLedger::violations(&repo, &expected).unwrap();
        println!(
            "| {prob:>10.2} | {n:>8} | {:>12} | {:>11} | {:>13} | {:>12} | {:>10} | {} |",
            report.incarnations,
            report.resync_received,
            report.resync_reprocessed,
            report.resync_already_processed,
            if printer.has_duplicate_prints() {
                "YES"
            } else {
                "0"
            },
            if violations.is_empty() {
                "HOLDS"
            } else {
                "VIOLATED"
            },
        );
    }
    println!();
}

// ======================================================================
// E2 — Fig 3: queue operation latencies (quick in-binary timing)
// ======================================================================
fn e2_queue_ops() {
    println!("## E2 — queue operation latency (Fig 3; see also `cargo bench queue_ops`)\n");
    println!("| operation | µs/op |");
    println!("|:----------|------:|");
    let repo = mk_repo("e2", &["q"]);
    let (h, _) = repo.qm().register("q", "c", false).unwrap();
    let iters = 2_000u32;

    let t0 = Instant::now();
    for _ in 0..iters {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                b"payload-64-bytes",
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }
    println!(
        "| Enqueue (txn commit incl.) | {:>5.1} |",
        t0.elapsed().as_micros() as f64 / iters as f64
    );

    let t0 = Instant::now();
    for _ in 0..iters {
        repo.autocommit(|t| {
            repo.qm()
                .dequeue(t.id().raw(), &h, DequeueOptions::default())
        })
        .unwrap();
    }
    println!(
        "| Dequeue (txn commit incl.) | {:>5.1} |",
        t0.elapsed().as_micros() as f64 / iters as f64
    );

    let eid = repo
        .autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())
        })
        .unwrap();
    let t0 = Instant::now();
    for _ in 0..iters {
        repo.qm().read(eid).unwrap();
    }
    println!(
        "| Read                       | {:>5.1} |",
        t0.elapsed().as_micros() as f64 / iters as f64
    );

    let t0 = Instant::now();
    for _ in 0..500 {
        repo.qm().register("q", "c", false).unwrap();
    }
    println!(
        "| Register (existing)        | {:>5.1} |",
        t0.elapsed().as_micros() as f64 / 500.0
    );
    println!();
}

// ======================================================================
// E3 — §2: one-txn vs two-txn vs queued three-txn designs
// ======================================================================
fn e3_design_comparison(scale: &Scale) {
    println!("## E3 — §2 design comparison (think time under locks)\n");
    println!("| think ms | one-txn req/s | two-txn req/s | queued req/s | one-txn conflicts |");
    println!("|---------:|--------------:|--------------:|-------------:|------------------:|");
    for think_ms in [0u64, 2, 5, 10] {
        let w = DesignWorkload {
            accounts: 2,
            clients: 8,
            requests_per_client: (3 * scale.n) as usize,
            think: Duration::from_millis(think_ms),
            seed: 11,
        };
        let r1 = {
            let repo = Arc::new(Repository::create(format!("e3-one-{think_ms}")).unwrap());
            designs::seed_accounts(&repo, w.accounts).unwrap();
            repo.tm().set_lock_timeout(Duration::from_secs(30));
            designs::run_one_txn(&repo, &w).unwrap()
        };
        let r2 = {
            let repo = Arc::new(Repository::create(format!("e3-two-{think_ms}")).unwrap());
            designs::seed_accounts(&repo, w.accounts).unwrap();
            repo.tm().set_lock_timeout(Duration::from_secs(30));
            designs::run_two_txn(&repo, &w).unwrap()
        };
        let r3 = {
            let repo = Arc::new(Repository::create(format!("e3-q-{think_ms}")).unwrap());
            designs::seed_accounts(&repo, w.accounts).unwrap();
            repo.tm().set_lock_timeout(Duration::from_secs(30));
            designs::run_queued(&repo, &w, 4).unwrap()
        };
        println!(
            "| {think_ms:>8} | {} | {} | {} | {:>17} |",
            fmt_rate(r1.throughput),
            fmt_rate(r2.throughput),
            fmt_rate(r3.throughput),
            r1.lock_conflicts
        );
    }
    println!();
}

// ======================================================================
// E4 — Figs 4/5: end-to-end throughput; exactly-once under node crashes
// ======================================================================
fn e4_end_to_end(scale: &Scale) {
    println!("## E4 — system-model throughput and server-crash tolerance (Figs 4–5)\n");
    println!("| servers | req/s |");
    println!("|--------:|------:|");
    let n = (60 * scale.n) as usize;
    for servers in [1usize, 2, 4, 8] {
        let repo = mk_repo(&format!("e4-{servers}"), &["req", "reply.c"]);
        let handler: Handler = Arc::new(|_ctx, req| {
            // A small CPU cost so servers matter.
            std::thread::sleep(Duration::from_micros(300));
            Ok(HandlerOutcome::Reply(req.body.clone()))
        });
        let (_s, handles, stop) = spawn_pool(&repo, "req", servers, handler).unwrap();
        let api = LocalQm::new(Arc::clone(&repo));
        api.register("req", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            let req = Request::new(Rid::new("c", i as u64 + 1), "reply.c", "op", vec![]);
            api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
                .unwrap();
        }
        for _ in 0..n {
            api.dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            )
            .unwrap();
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        println!("| {servers:>7} | {} |", fmt_rate(rate));
    }

    println!("\n| node crashes | requests | replies | exactly-once |");
    println!("|-------------:|---------:|--------:|:-------------|");
    let handler_factory: Arc<dyn Fn() -> Handler + Send + Sync> = Arc::new(|| {
        EffectLedger::instrument(Arc::new(|_ctx, req: &Request| {
            Ok(HandlerOutcome::Reply(req.body.clone()))
        }))
    });
    let mut node = ServerNodeSim::new(
        "e4-crashy",
        "req",
        2,
        vec!["req".into(), "reply.c".into()],
        handler_factory,
    );
    node.start().unwrap();
    let total = 8 * scale.n;
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut expected = Vec::new();
    while received < total {
        let api = LocalQm::new(node.repo());
        api.register("req", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        while sent < total && sent < received + 4 {
            sent += 1;
            let rid = Rid::new("c", sent);
            expected.push(rid.clone());
            let req = Request::new(rid, "reply.c", "op", vec![]);
            api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        node.crash();
        node.start().unwrap();
        let api = LocalQm::new(node.repo());
        while received < total {
            match api.dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_millis(300)),
                    ..Default::default()
                },
            ) {
                Ok(_) => received += 1,
                Err(_) => break,
            }
        }
    }
    let violations = EffectLedger::violations(&node.repo(), &expected).unwrap();
    println!(
        "| {:>12} | {total:>8} | {received:>7} | {} |",
        node.crash_count(),
        if violations.is_empty() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
    println!();
}

// ======================================================================
// E5 — Fig 6 / §6: multi-transaction requests vs one long transaction
// ======================================================================
fn e5_multi_txn(scale: &Scale) {
    println!(
        "## E5 — funds transfer: one long transaction vs three chained transactions (Fig 6)\n"
    );
    println!("The paper's motivation for multi-transaction requests is lock contention:");
    println!("the long transaction holds BOTH account locks for the whole request, the");
    println!("pipeline holds each lock for one stage only. Accounts are hot (4 total).\n");
    println!("| stage cost µs | single-txn req/s | 3-txn pipeline req/s | pipeline/single |");
    println!("|--------------:|-----------------:|---------------------:|----------------:|");
    let n = 20 * scale.n;
    const ACCOUNTS: u32 = 4;
    for stage_us in [0u64, 500, 2000] {
        // Single fat transaction: the per-stage work happens while both
        // account locks are held.
        let single = {
            let repo = mk_repo(&format!("e5-s-{stage_us}"), &["req", "reply.c"]);
            repo.qm()
                .update_queue("req", |m| m.retry_limit = 0)
                .unwrap();
            repo.tm().set_lock_timeout(Duration::from_secs(60));
            bank::seed_accounts(&repo, ACCOUNTS, 1_000_000).unwrap();
            let inner = bank::single_txn_handler();
            let handler: Handler = Arc::new(move |ctx, req| {
                let out = inner(ctx, req)?; // takes both locks
                std::thread::sleep(Duration::from_micros(3 * stage_us));
                Ok(out)
            });
            let (_s, handles, stop) = spawn_pool(&repo, "req", 3, handler).unwrap();
            let rate = drive_transfers(&repo, "req", n, ACCOUNTS);
            stop.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
            rate
        };
        // Three-transaction pipeline: each stage holds one account lock for
        // one stage's worth of work.
        let pipelined = {
            let repo = mk_repo(&format!("e5-p-{stage_us}"), &["x0", "x1", "x2", "reply.c"]);
            for q in ["x0", "x1", "x2"] {
                repo.qm().update_queue(q, |m| m.retry_limit = 0).unwrap();
            }
            repo.tm().set_lock_timeout(Duration::from_secs(60));
            bank::seed_accounts(&repo, ACCOUNTS, 1_000_000).unwrap();
            let base = bank::transfer_pipeline(["x0", "x1", "x2"], Serializability::None);
            let inner = base.stage_fn;
            let stage_fn: StageFn = Arc::new(move |ctx, req, i| {
                let out = inner(ctx, req, i)?; // takes this stage's lock
                std::thread::sleep(Duration::from_micros(stage_us));
                Ok(out)
            });
            let pipeline = Pipeline {
                queues: base.queues,
                stage_fn,
                mode: Serializability::None,
            };
            let servers = pipeline.build_servers(&repo).unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = servers.iter().map(|s| s.spawn(Arc::clone(&stop))).collect();
            let rate = drive_transfers(&repo, "x0", n, ACCOUNTS);
            stop.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
            rate
        };
        println!(
            "| {stage_us:>13} | {} | {} | {:>15.2} |",
            fmt_rate(single),
            fmt_rate(pipelined),
            pipelined / single
        );
    }
    println!();
}

fn drive_transfers(repo: &Arc<Repository>, entry: &str, n: u64, accounts: u32) -> f64 {
    let api = LocalQm::new(Arc::clone(repo));
    api.register(entry, "c", false).unwrap();
    api.register("reply.c", "c", false).unwrap();
    let t0 = Instant::now();
    for i in 0..n {
        let from = (i % accounts as u64) as u32;
        let t = Transfer {
            from,
            to: (from + 1) % accounts,
            amount: 10,
        };
        let req = Request::new(Rid::new("c", i + 1), "reply.c", "transfer", t.encode());
        api.enqueue(entry, "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
    }
    for _ in 0..n {
        api.dequeue(
            "reply.c",
            "c",
            DequeueOptions {
                block: Some(Duration::from_secs(120)),
                ..Default::default()
            },
        )
        .unwrap();
    }
    n as f64 / t0.elapsed().as_secs_f64()
}

// ======================================================================
// E6 — §6: request-level serializability mechanisms
// ======================================================================
fn e6_request_serializability(scale: &Scale) {
    println!(
        "## E6 — request serializability: none vs lock inheritance vs application locks (§6)\n"
    );
    println!("| contention θ | none req/s | inherit-locks req/s | app-locks req/s |");
    println!("|-------------:|-----------:|--------------------:|----------------:|");
    let n = 10 * scale.n;
    for theta in [0.0f64, 0.7, 0.95] {
        let mut rates = Vec::new();
        for mode_name in ["none", "inherit", "applock"] {
            let repo = mk_repo(
                &format!("e6-{mode_name}-{}", (theta * 100.0) as u32),
                &["x0", "x1", "x2", "reply.c"],
            );
            // Busy app-locks abort and retry; never exile to the error
            // queue, and rotate retried elements to the back so a blocked
            // head cannot livelock the stage (see pipeline docs).
            for q in ["x0", "x1", "x2"] {
                repo.qm()
                    .update_queue(q, |m| {
                        m.retry_limit = 0;
                        m.requeue_at_back_on_abort = true;
                    })
                    .unwrap();
            }
            bank::seed_accounts(&repo, 32, 1_000_000).unwrap();
            // Short lock waits: with lock inheritance, a stage server can
            // block behind locks parked by a request queued BEHIND the one
            // it is processing (head-of-line inversion); a quick timeout
            // aborts the stage so the queue reorders and progress resumes.
            repo.tm().set_lock_timeout(Duration::from_millis(100));
            let pipeline = match mode_name {
                "none" => bank::transfer_pipeline(["x0", "x1", "x2"], Serializability::None),
                "inherit" => {
                    bank::transfer_pipeline(["x0", "x1", "x2"], Serializability::InheritLocks)
                }
                _ => app_lock_pipeline(&repo),
            };
            // Two servers per stage: required for progress under lock
            // inheritance (see Pipeline::build_servers_pool docs) and the
            // same for every mode so the comparison stays fair.
            let servers = pipeline.build_servers_pool(&repo, 2).unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = servers.iter().map(|s| s.spawn(Arc::clone(&stop))).collect();

            let api = LocalQm::new(Arc::clone(&repo));
            api.register("x0", "c", false).unwrap();
            api.register("reply.c", "c", false).unwrap();
            let mut zipf = ZipfSelector::new(32, theta, 99);
            let t0 = Instant::now();
            for i in 0..n {
                let from = zipf.next() as u32;
                let to = (zipf.next() as u32 + 1) % 32;
                let t = Transfer {
                    from,
                    to: if to == from { (to + 1) % 32 } else { to },
                    amount: 5,
                };
                let req = Request::new(Rid::new("c", i + 1), "reply.c", "transfer", t.encode());
                api.enqueue("x0", "c", &req.encode_to_vec(), EnqueueOptions::default())
                    .unwrap();
            }
            for i in 0..n {
                let r = api.dequeue(
                    "reply.c",
                    "c",
                    DequeueOptions {
                        block: Some(Duration::from_secs(30)),
                        ..Default::default()
                    },
                );
                if let Err(e) = r {
                    for q in ["x0", "x1", "x2", "reply.c"] {
                        eprintln!(
                            "E6 DIAG mode={mode_name} θ={theta} reply {i}/{n}: depth({q}) = {:?}",
                            api.depth(q)
                        );
                    }
                    panic!("E6 reply dequeue failed: {e:?}");
                }
            }
            rates.push(n as f64 / t0.elapsed().as_secs_f64());
            stop.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
        }
        println!(
            "| {theta:>12.2} | {} | {} | {} |",
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2])
        );
    }
    println!();
}

/// A transfer pipeline using the §6 persistent application-lock table:
/// stage 0 locks both accounts for the request; the final stage releases.
fn app_lock_pipeline(repo: &Arc<Repository>) -> Pipeline {
    let table = Arc::new(AppLockTable::new(Arc::clone(repo.store())));
    let stage_fn: StageFn = Arc::new(move |ctx, req, i| {
        let t = Transfer::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        let txn = ctx.txn.id().raw();
        match i {
            0 => {
                for acct in [t.from, t.to] {
                    let got = table
                        .acquire(txn, &format!("acct-{acct}"), &req.rid)
                        .map_err(|e| HandlerError::Abort(e.to_string()))?;
                    if !got {
                        return Err(HandlerError::Abort("app lock busy".into()));
                    }
                }
                adjust_balance(ctx, t.from, -t.amount)?;
                Ok(StageResult::Next(vec![]))
            }
            1 => {
                adjust_balance(ctx, t.to, t.amount)?;
                Ok(StageResult::Next(vec![]))
            }
            _ => {
                table
                    .release_all(txn, &req.rid)
                    .map_err(|e| HandlerError::Abort(e.to_string()))?;
                Ok(StageResult::Done(b"transferred".to_vec()))
            }
        }
    });
    Pipeline {
        queues: vec!["x0".into(), "x1".into(), "x2".into()],
        stage_fn,
        mode: Serializability::None,
    }
}

fn adjust_balance(
    ctx: &rrq_core::server::ServerCtx<'_>,
    acct: u32,
    delta: i64,
) -> Result<(), HandlerError> {
    let key = format!("bank/acct/{acct:08}").into_bytes();
    ctx.txn
        .lock_exclusive(&LockKey::new(bank::BANK_NS, key.clone()))
        .map_err(|e| HandlerError::Abort(e.to_string()))?;
    let txn = ctx.txn.id().raw();
    let bal = ctx
        .repo
        .store()
        .get(Some(txn), &key)
        .map_err(|e| HandlerError::Abort(e.to_string()))?
        .map(|raw| i64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
        .unwrap_or(0);
    ctx.repo
        .store()
        .put(txn, &key, &(bal + delta).to_le_bytes())
        .map_err(|e| HandlerError::Abort(e.to_string()))
}

// ======================================================================
// E7 — §7: cancellation success vs request progress
// ======================================================================
fn e7_cancellation(scale: &Scale) {
    println!("## E7 — cancellation window (§7)\n");
    println!("| cancel delay ms | cancelled | too late | effects committed |");
    println!("|----------------:|----------:|---------:|------------------:|");
    let per_point = 4 * scale.n;
    for delay_ms in [0u64, 5, 20, 60] {
        let repo = mk_repo(&format!("e7-{delay_ms}"), &["req", "reply.c"]);
        let handler = EffectLedger::instrument(Arc::new(|_ctx, req: &Request| {
            std::thread::sleep(Duration::from_millis(15)); // processing time
            Ok(HandlerOutcome::Reply(req.body.clone()))
        }));
        let (_s, handles, stop) = spawn_pool(&repo, "req", 1, handler).unwrap();
        let clerk = mk_clerk(&repo, "c");
        clerk.connect().unwrap();
        let mut cancelled = 0u64;
        let mut too_late = 0u64;
        for i in 0..per_point {
            clerk.send("op", vec![], Rid::new("c", i + 1)).unwrap();
            std::thread::sleep(Duration::from_millis(delay_ms));
            if clerk.cancel_last_request().unwrap() {
                cancelled += 1;
                // No reply will come; proceed directly.
            } else {
                too_late += 1;
                let _ = clerk.receive(b"").unwrap();
            }
            // Drain any stray replies (cancel raced with the reply enqueue).
            while repo.qm().depth("reply.c").unwrap_or(0) > 0 {
                let _ = repo.autocommit(|t| {
                    let (h, _) = repo.qm().register("reply.c", "c", true)?;
                    repo.qm()
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())
                });
            }
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        let effects = EffectLedger::counts(&repo).unwrap().len() as u64;
        println!("| {delay_ms:>15} | {cancelled:>9} | {too_late:>8} | {effects:>17} |");
    }
    println!();
}

// ======================================================================
// E8 — §8: interactive requests
// ======================================================================
fn e8_interactive(scale: &Scale) {
    println!("## E8 — interactive requests: I/O-log replay under server aborts (§8.3)\n");
    println!("| aborts per request | rounds | user asked | replayed | divergences |");
    println!("|-------------------:|-------:|-----------:|---------:|------------:|");
    let rounds = 3u32;
    for aborts in [0u32, 1, 3] {
        let bus = NetworkBus::new(31 + aborts as u64);
        let repo = mk_repo(&format!("e8-{aborts}"), &["req", "reply.c"]);
        let log = Arc::new(IoLog::new());
        let asked = Arc::new(AtomicU32::new(0));
        let asked2 = Arc::clone(&asked);
        let user: rrq_core::conversation::UserFn = Arc::new(move |p| {
            asked2.fetch_add(1, Ordering::AcqRel);
            p.to_vec()
        });
        let _guard = rrq_core::conversation::spawn_conversation_endpoint(
            &bus,
            "conv-client",
            Arc::clone(&log),
            user,
        );
        let attempts = Arc::new(AtomicU32::new(0));
        let attempts2 = Arc::clone(&attempts);
        let bus2 = bus.clone();
        let handler: Handler = Arc::new(move |_ctx, req| {
            use rrq_core::conversation::{Conversation, RpcConversation};
            let n = attempts2.fetch_add(1, Ordering::AcqRel);
            let rpc =
                rrq_net::rpc::RpcClient::new(&bus2, &format!("conv-srv-{}-{n}", req.rid.serial));
            let mut conv = RpcConversation::new(rpc, "conv-client", req.rid.to_attr());
            let mut collected = Vec::new();
            for r in 0..rounds {
                let input = conv.solicit(format!("q{r}?").as_bytes())?;
                collected.extend_from_slice(&input);
            }
            if n < aborts {
                return Err(HandlerError::Abort("injected".into()));
            }
            Ok(HandlerOutcome::Reply(collected))
        });
        // Raise the retry limit so injected aborts never exile the request.
        repo.qm()
            .update_queue("req", |m| m.retry_limit = 50)
            .unwrap();
        let (_s, handles, stop) = spawn_pool(&repo, "req", 1, handler).unwrap();

        let n_requests = scale.n.max(2);
        let clerk = mk_clerk(&repo, "c");
        clerk.connect().unwrap();
        for i in 0..n_requests {
            // Reset per-request attempt counter so each request aborts
            // `aborts` times.
            attempts.store(0, Ordering::Release);
            clerk
                .send("converse", vec![], Rid::new("c", i + 1))
                .unwrap();
            let _ = clerk.receive(b"").unwrap();
        }
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        let s = log.stats();
        println!(
            "| {aborts:>18} | {rounds:>6} | {:>10} | {:>8} | {:>11} |",
            asked.load(Ordering::Acquire),
            s.replayed,
            s.divergences
        );
    }
    println!();
}

// ======================================================================
// E9 — §10: skip-locked vs strict-FIFO dequeue under concurrency
// ======================================================================
fn e9_dequeue_ordering(scale: &Scale) {
    println!("## E9 — dequeue ordering: skip-locked vs strict FIFO (§10)\n");
    println!("| dequeuers | skip-locked el/s | strict-FIFO el/s | skip/strict |");
    println!("|----------:|-----------------:|-----------------:|------------:|");
    let elements = (150 * scale.n) as usize;
    for threads in [1usize, 2, 4, 8] {
        let mut rates = Vec::new();
        for mode in [OrderingMode::SkipLocked, OrderingMode::StrictFifo] {
            let repo = Arc::new(Repository::create(format!("e9-{threads}-{mode:?}")).unwrap());
            let mut meta = QueueMeta::with_defaults("q");
            meta.mode = mode;
            repo.qm().create_queue(meta).unwrap();
            let (h, _) = repo.qm().register("q", "filler", false).unwrap();
            for i in 0..elements {
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        &i.to_le_bytes(),
                        EnqueueOptions::default(),
                    )
                })
                .unwrap();
            }
            let t0 = Instant::now();
            let mut handles = Vec::new();
            for d in 0..threads {
                let repo = Arc::clone(&repo);
                handles.push(rrq_core::threads::spawn_named(
                    format!("e13-d{d}"),
                    move || {
                        let (h, _) = repo.qm().register("q", &format!("d{d}"), false).unwrap();
                        loop {
                            // Process the element INSIDE the transaction, so its
                            // write lock is held for the duration of the work —
                            // the situation §10's ordering discussion is about.
                            let r = repo.autocommit(|t| {
                                let e = repo.qm().dequeue(
                                    t.id().raw(),
                                    &h,
                                    DequeueOptions::default(),
                                )?;
                                std::thread::sleep(Duration::from_micros(300));
                                Ok(e)
                            });
                            if r.is_err() {
                                return;
                            }
                        }
                    },
                ));
            }
            for hd in handles {
                hd.join().unwrap();
            }
            rates.push(elements as f64 / t0.elapsed().as_secs_f64());
        }
        println!(
            "| {threads:>9} | {} | {} | {:>11.2} |",
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            rates[0] / rates[1]
        );
    }
    println!();
}

// ======================================================================
// E10 — §4.3: persistent-registration cost and recovery fidelity
// ======================================================================
fn e10_registration(scale: &Scale) {
    println!("## E10 — persistent registration: cost and recovery (§4.3)\n");
    let iters = (500 * scale.n) as u32;
    let repo = mk_repo("e10-cost", &["q"]);
    let (h, _) = repo.qm().register("q", "c", true).unwrap();
    let t0 = Instant::now();
    for _ in 0..iters {
        repo.autocommit(|t| {
            repo.qm()
                .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())
        })
        .unwrap();
    }
    let untagged = t0.elapsed().as_micros() as f64 / iters as f64;
    let t0 = Instant::now();
    for i in 0..iters {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                b"x",
                EnqueueOptions {
                    tag: Some((i as u64).to_le_bytes().to_vec()),
                    ..Default::default()
                },
            )
        })
        .unwrap();
    }
    let tagged = t0.elapsed().as_micros() as f64 / iters as f64;
    println!("| variant | µs/op |");
    println!("|:--------|------:|");
    println!("| enqueue, no tag          | {untagged:>5.1} |");
    println!("| enqueue + stable tag     | {tagged:>5.1} |");
    println!(
        "| overhead                 | {:>4.0}% |",
        (tagged / untagged - 1.0) * 100.0
    );

    // Recovery fidelity: crash after every tagged op; re-register must
    // return exactly the last committed tag.
    let cycles = 10 * scale.n;
    let disks = rrq_qm::repository::RepoDisks::new();
    let mut correct = 0u64;
    for i in 0..cycles {
        let (repo, _) = Repository::open("e10-rec", disks.clone()).unwrap();
        let repo = Arc::new(repo);
        let _ = repo.create_queue_defaults("q");
        let (h, reg) = repo.qm().register("q", "c", true).unwrap();
        // Check the previous incarnation's tag.
        let expected_prev = if i == 0 {
            None
        } else {
            Some((i - 1).to_le_bytes().to_vec())
        };
        if reg.tag == expected_prev {
            correct += 1;
        }
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                b"x",
                EnqueueOptions {
                    tag: Some(i.to_le_bytes().to_vec()),
                    ..Default::default()
                },
            )
        })
        .unwrap();
        drop(repo);
        disks.crash();
    }
    println!("\ncrash/reopen cycles: {cycles}; tags recovered correctly: {correct}/{cycles}\n");
}

// ======================================================================
// E11 — §1: burst absorption and load sharing
// ======================================================================
fn e11_burst_and_load_sharing(scale: &Scale) {
    println!("## E11 — burst absorption and load sharing (§1)\n");
    let n = (40 * scale.n) as usize;
    let arrivals = bursty_arrivals(n, 10, 20_000.0, 30, 5);
    let repo = mk_repo("e11", &["req", "reply.c"]);
    let handler: Handler = Arc::new(|_ctx, req| {
        std::thread::sleep(Duration::from_millis(2)); // fixed service time
        Ok(HandlerOutcome::Reply(req.body.clone()))
    });
    let (servers, handles, stop) = spawn_pool(&repo, "req", 4, handler).unwrap();
    let api = LocalQm::new(Arc::clone(&repo));
    api.register("req", "c", false).unwrap();
    api.register("reply.c", "c", false).unwrap();

    let t0 = Instant::now();
    let mut max_depth = 0usize;
    for (i, &at_us) in arrivals.iter().enumerate() {
        let target = Duration::from_micros(at_us);
        if let Some(wait) = target.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let req = Request::new(Rid::new("c", i as u64 + 1), "reply.c", "op", vec![]);
        api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
        max_depth = max_depth.max(api.depth("req").unwrap_or(0));
    }
    for _ in 0..n {
        api.dequeue(
            "reply.c",
            "c",
            DequeueOptions {
                block: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        )
        .unwrap();
    }
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    let shares: Vec<u64> = servers.iter().map(|s| s.stats().committed).collect();
    let busiest = *shares.iter().max().unwrap() as f64;
    let idlest = *shares.iter().min().unwrap() as f64;
    println!("| metric | value |");
    println!("|:-------|------:|");
    println!("| bursty arrivals          | {n} |");
    println!("| max queue depth observed | {max_depth} |");
    println!("| all replies delivered    | yes |");
    println!("| per-server shares        | {shares:?} |");
    println!(
        "| share imbalance (max/min) | {:.2} |",
        if idlest > 0.0 {
            busiest / idlest
        } else {
            f64::INFINITY
        }
    );
    println!();
}

// ======================================================================
// E12 — §5: Send transport modes (message accounting)
// ======================================================================
fn e12_send_modes(scale: &Scale) {
    println!("## E12 — Send acknowledgement modes (§5)\n");
    println!("| mode | requests | rpc calls | one-way msgs | msgs/request |");
    println!("|:-----|---------:|----------:|-------------:|-------------:|");
    let n = 10 * scale.n;
    for mode in ["acked", "one-way"] {
        let bus = NetworkBus::new(37);
        let repo = mk_repo(&format!("e12-{mode}"), &["req", "reply.c"]);
        let _guard = QmRpcServer::spawn(&bus, "qm", Arc::clone(&repo));
        let (_s, handles, stop) = spawn_pool(
            &repo,
            "req",
            1,
            Arc::new(|_ctx, req: &Request| Ok(HandlerOutcome::Reply(req.body.clone()))),
        )
        .unwrap();

        let remote = Arc::new(RemoteQm::new(&bus, &format!("cl-{mode}"), "qm"));
        let counts_handle = Arc::clone(&remote);
        let mut cfg = ClerkConfig::new("c", "req");
        cfg.reply_queue = "reply.c".into();
        cfg.send_mode = if mode == "acked" {
            rrq_core::clerk::SendMode::Acked
        } else {
            rrq_core::clerk::SendMode::OneWay
        };
        cfg.receive_block = Duration::from_secs(30);
        let clerk = Clerk::new(remote, cfg);
        clerk.connect().unwrap();
        let (base_calls, base_oneway) = counts_handle.message_counts();
        for i in 0..n {
            clerk.send("op", vec![], Rid::new("c", i + 1)).unwrap();
            let _ = clerk.receive(b"").unwrap();
        }
        let (calls, oneway) = counts_handle.message_counts();
        let total = (calls - base_calls) * 2 + (oneway - base_oneway);
        println!(
            "| {mode} | {n:>8} | {:>9} | {:>12} | {:>12.2} |",
            calls - base_calls,
            oneway - base_oneway,
            total as f64 / n as f64
        );
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
    }
    println!();
}

// ======================================================================
// E13 — §10: main-memory queue storage
// ======================================================================
fn e13_storage(scale: &Scale) {
    println!("## E13 — storage design point (§10; see also `cargo bench storage`)\n");
    println!("| configuration | commit µs | recovery ms (10k txns) |");
    println!("|:--------------|----------:|-----------------------:|");
    let iters = 2_000 * scale.n;
    for (name, sync) in [
        ("forced log (durable)", true),
        ("no force (volatile)", false),
    ] {
        let wal = SimDisk::new();
        let ckpt = SimDisk::new();
        let (store, _) = KvStore::open(
            Arc::new(wal.clone()),
            Arc::new(ckpt.clone()),
            KvOptions {
                sync_on_commit: sync,
                ..KvOptions::default()
            },
        )
        .unwrap();
        let t0 = Instant::now();
        for t in 1..=iters {
            store.begin(t).unwrap();
            store.put(t, &t.to_le_bytes(), b"element-payload").unwrap();
            store.commit(t).unwrap();
        }
        let commit_us = t0.elapsed().as_micros() as f64 / iters as f64;

        // Recovery time over a 10k-txn log.
        let wal2 = SimDisk::new();
        let ckpt2 = SimDisk::new();
        let (s2, _) = KvStore::open(
            Arc::new(wal2.clone()),
            Arc::new(ckpt2.clone()),
            KvOptions::default(),
        )
        .unwrap();
        for t in 1..=10_000u64 {
            s2.begin(t).unwrap();
            s2.put(t, &t.to_le_bytes(), b"x").unwrap();
            s2.commit(t).unwrap();
        }
        let t0 = Instant::now();
        let _ = KvStore::open(
            Arc::new(wal2.clone()),
            Arc::new(ckpt2.clone()),
            KvOptions::default(),
        )
        .unwrap();
        let rec_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("| {name} | {commit_us:>9.2} | {rec_ms:>22.1} |");
    }
    println!();
}

// ======================================================================
// E14 — §3: testable devices and exactly-once reply processing
// ======================================================================
fn e14_testable_device(scale: &Scale) {
    println!("## E14 — exactly-once reply processing needs a testable device (§3)\n");
    println!("| device | crashes after process | duplicate prints |");
    println!("|:-------|----------------------:|-----------------:|");
    let n = 5 * scale.n;

    // A printer that is NOT testable: it cannot answer "did I print this?".
    struct DumbPrinter {
        printed: Vec<Rid>,
    }
    impl ReplyProcessor for DumbPrinter {
        fn checkpoint(&mut self) -> Vec<u8> {
            Vec::new()
        }
        fn process(&mut self, rid: &Rid, _reply: &Reply) {
            self.printed.push(rid.clone());
        }
        fn already_processed(&mut self, _rid: &Rid, _ckpt: Option<&[u8]>) -> bool {
            false // can't tell → must assume not processed (at-least-once)
        }
    }

    for device in ["dumb printer", "testable printer"] {
        let repo = mk_repo(
            &format!("e14-{}", device.replace(' ', "-")),
            &["req", "reply.c"],
        );
        let (_s, handles, stop) = spawn_pool(
            &repo,
            "req",
            1,
            Arc::new(|_ctx, req: &Request| Ok(HandlerOutcomeReply(req))),
        )
        .unwrap();
        let schedule = CrashSchedule::every(n, CrashPoint::AfterProcess);
        let driver = ClientCrashDriver::new(|| mk_clerk(&repo, "c"), "op");
        let duplicates = if device == "dumb printer" {
            let mut p = DumbPrinter {
                printed: Vec::new(),
            };
            driver
                .run(n, |s| schedule.get(s), |_| vec![], &mut p)
                .unwrap();
            let mut sorted = p.printed.clone();
            sorted.sort();
            sorted.dedup();
            p.printed.len() - sorted.len()
        } else {
            let mut p = TicketPrinter::new();
            driver
                .run(n, |s| schedule.get(s), |_| vec![], &mut p)
                .unwrap();
            let mut rids: Vec<_> = p.printed().iter().map(|(_, r, _)| r.clone()).collect();
            let before = rids.len();
            rids.sort();
            rids.dedup();
            before - rids.len()
        };
        println!("| {device} | {n:>21} | {duplicates:>16} |");
        stop.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
    }
    println!();
}

#[allow(non_snake_case)]
fn HandlerOutcomeReply(req: &Request) -> HandlerOutcome {
    HandlerOutcome::Reply(format!("done {}", req.rid).into_bytes())
}

// ======================================================================
// E16 — group commit and the indexed dequeue hot path (§10)
// ======================================================================
fn e16_group_commit_and_index(scale: &Scale) {
    println!("## E16 — group-commit WAL and the indexed dequeue hot path (§10)\n");
    let mut json = String::from("{\n  \"experiment\": \"E16\",\n");

    // ------------------------------------------------------------------
    // Part A: commit throughput, committers × sync strategy, over a disk
    // whose sync costs ~300µs (a fast NVMe flush; the SimDisk alone syncs
    // in nanoseconds, which would hide the effect group commit exists for).
    // ------------------------------------------------------------------
    let sync_cost = Duration::from_micros(300);
    let per_thread = 50 * scale.n;
    println!("Disk sync cost 300µs, {per_thread} commits/thread.\n");
    println!("| committers | per-txn sync | group w=0 | group w=200µs | group w=1ms | best speedup | batching (req/grp, w=1ms) |");
    println!("|-----------:|-------------:|----------:|--------------:|------------:|-------------:|--------------------------:|");
    json.push_str("  \"group_commit\": [\n");
    let modes: [(&str, &str, bool, Duration); 4] = [
        ("per-txn sync", "per_txn", false, Duration::ZERO),
        ("group w=0", "group_w0", true, Duration::ZERO),
        (
            "group w=200µs",
            "group_w200us",
            true,
            Duration::from_micros(200),
        ),
        ("group w=1ms", "group_w1ms", true, Duration::from_millis(1)),
    ];
    let mut first = true;
    for committers in [1u64, 2, 4, 8, 16, 32] {
        let mut rates = Vec::new();
        let mut batching = String::new();
        for (_, key, grouped, window) in modes {
            let wal: Arc<dyn Disk> =
                Arc::new(LatencyDisk::new(Arc::new(SimDisk::new()), sync_cost));
            let ckpt: Arc<dyn Disk> = Arc::new(SimDisk::new());
            let (store, _) = KvStore::open(
                wal,
                ckpt,
                KvOptions {
                    sync_on_commit: true,
                    group_commit: grouped,
                    group_commit_window: window,
                },
            )
            .unwrap();
            let t0 = Instant::now();
            let handles: Vec<_> = (0..committers)
                .map(|c| {
                    let store = Arc::clone(&store);
                    rrq_core::threads::spawn_named(format!("e16-committer-{c}"), move || {
                        for i in 0..per_thread {
                            let txn = c * 1_000_000 + i + 1;
                            store.begin(txn).unwrap();
                            store
                                .put(
                                    txn,
                                    format!("k/{c}/{i}").as_bytes(),
                                    b"commit-record-payload",
                                )
                                .unwrap();
                            store.commit(txn).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let secs = t0.elapsed().as_secs_f64();
            let commits = (committers * per_thread) as f64;
            let rate = commits / secs;
            rates.push(rate);
            let gs = store.group_commit_stats();
            if key == "group_w1ms" && gs.groups > 0 {
                batching = format!("{:.1}", gs.requests as f64 / gs.groups as f64);
            }
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"committers\": {committers}, \"mode\": \"{key}\", \"commits_per_sec\": {rate:.1}, \"sync_requests\": {}, \"groups\": {}}}",
                gs.requests, gs.groups
            ));
        }
        let best = rates[1..].iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "| {committers:>10} | {} | {} | {} | {} | {:>11.1}x | {batching:>26} |",
            fmt_rate(rates[0]),
            fmt_rate(rates[1]),
            fmt_rate(rates[2]),
            fmt_rate(rates[3]),
            best / rates[0]
        );
    }
    json.push_str("\n  ],\n");
    println!();

    // ------------------------------------------------------------------
    // Part B: dequeue and depth latency vs. queue depth, ready index vs.
    // storage scan. Dequeue takes the head either way (both page-bounded);
    // depth() is where the scan pays O(depth) and the index answers O(1).
    // ------------------------------------------------------------------
    println!("| depth | dequeue idx µs | dequeue scan µs | depth idx µs | depth scan µs |");
    println!("|------:|---------------:|----------------:|-------------:|--------------:|");
    json.push_str("  \"dequeue\": [\n");
    let mut first = true;
    for depth in [100u64, 1_000, 10_000] {
        let probes = depth.min(200);
        let repo = mk_repo(&format!("e16-d{depth}"), &["q"]);
        let (h, _) = repo.qm().register("q", "bench", false).unwrap();
        for i in 0..depth {
            repo.autocommit(|t| {
                repo.qm().enqueue(
                    t.id().raw(),
                    &h,
                    format!("element-{i}-with-a-payload-of-plausible-size").as_bytes(),
                    EnqueueOptions::default(),
                )
            })
            .unwrap();
        }
        let mut cells = Vec::new();
        for indexed in [true, false] {
            repo.qm().set_indexed_dequeue(indexed);
            let t0 = Instant::now();
            let mut taken = Vec::new();
            for _ in 0..probes {
                let e = repo
                    .autocommit(|t| {
                        repo.qm()
                            .dequeue(t.id().raw(), &h, DequeueOptions::default())
                    })
                    .unwrap();
                taken.push(e);
            }
            let deq_us = t0.elapsed().as_micros() as f64 / probes as f64;
            let t0 = Instant::now();
            for _ in 0..probes {
                let _ = repo.qm().depth("q").unwrap();
            }
            let depth_us = t0.elapsed().as_micros() as f64 / probes as f64;
            cells.push((deq_us, depth_us));
            // Restore the queue for the other configuration.
            for e in taken {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, &e.payload, EnqueueOptions::default())
                })
                .unwrap();
            }
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"depth\": {depth}, \"path\": \"{}\", \"dequeue_us\": {deq_us:.2}, \"depth_us\": {depth_us:.2}}}",
                if indexed { "indexed" } else { "scan" }
            ));
        }
        println!(
            "| {depth:>5} | {:>14.2} | {:>15.2} | {:>12.2} | {:>13.2} |",
            cells[0].0, cells[1].0, cells[0].1, cells[1].1
        );
    }
    json.push_str("\n  ]\n}\n");
    println!();

    std::fs::write("BENCH_PR3.json", &json).unwrap();
    println!("Series written to BENCH_PR3.json.\n");
}

// ======================================================================
// E17 — §10 again, but every number comes from production counters
// ======================================================================
fn e17_observability(scale: &Scale) {
    println!("## E17 — counter-derived series from the rrq-obs layer\n");
    println!("The same §10 stories as E16, but derived from the metrics the code");
    println!("itself records (`crates/obs/METRICS.md`), not bench-local bookkeeping:");
    println!("if the two disagree, the instrumentation is lying.\n");
    let mut json = String::from("{\n  \"experiment\": \"E17\",\n");

    // ------------------------------------------------------------------
    // Part A: group-commit batching from the storage counters alone.
    // Same workload as E16 part A (300µs sync, group window 1ms); the
    // records/force ratio must grow with committers like E16's
    // requests/group column (each commit writes begin/put/commit records,
    // so the absolute ratio is ~3× the request batching).
    // ------------------------------------------------------------------
    let sync_cost = Duration::from_micros(300);
    let per_thread = 25 * scale.n;
    println!("| committers | commits/s | wal forces | records/force | batch p50 | batch p99 |");
    println!("|-----------:|----------:|-----------:|--------------:|----------:|----------:|");
    json.push_str("  \"group_commit\": [\n");
    let mut first = true;
    for committers in [1u64, 2, 4, 8, 16] {
        let session = rrq_obs::Session::start();
        let wal: Arc<dyn Disk> = Arc::new(LatencyDisk::new(Arc::new(SimDisk::new()), sync_cost));
        let ckpt: Arc<dyn Disk> = Arc::new(SimDisk::new());
        let (store, _) = KvStore::open(
            wal,
            ckpt,
            KvOptions {
                sync_on_commit: true,
                group_commit: true,
                group_commit_window: Duration::from_millis(1),
            },
        )
        .unwrap();
        let t0 = Instant::now();
        let handles: Vec<_> = (0..committers)
            .map(|c| {
                let store = Arc::clone(&store);
                rrq_core::threads::spawn_named(format!("e17-committer-{c}"), move || {
                    for i in 0..per_thread {
                        let txn = c * 1_000_000 + i + 1;
                        store.begin(txn).unwrap();
                        store
                            .put(
                                txn,
                                format!("k/{c}/{i}").as_bytes(),
                                b"commit-record-payload",
                            )
                            .unwrap();
                        store.commit(txn).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rate = (committers * per_thread) as f64 / t0.elapsed().as_secs_f64();
        let snap = session.snapshot();
        let forces = snap.counter("storage.wal.forces");
        let synced = snap.counter("storage.wal.records_synced");
        let per_force = synced as f64 / forces.max(1) as f64;
        let (p50, p99) = snap
            .histogram("storage.gc.batch_records")
            .map(|h| (h.quantile(0.5), h.quantile(0.99)))
            .unwrap_or((0, 0));
        println!(
            "| {committers:>10} | {} | {forces:>10} | {per_force:>13.1} | {p50:>9} | {p99:>9} |",
            fmt_rate(rate)
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"committers\": {committers}, \"forces\": {forces}, \"records_per_force\": {per_force:.2}, \"batch_p50\": {p50}, \"batch_p99\": {p99}}}"
        ));
    }
    json.push_str("\n  ],\n");
    println!();

    // ------------------------------------------------------------------
    // Part B: dequeue contention from the qm and txn counters. Skip-locked
    // dequeuers record lock skips; strict-FIFO dequeuers block on the head
    // element's lock, so the lock manager's wait histogram (logical ticks)
    // tells the ordering story E9 told with throughput numbers.
    // ------------------------------------------------------------------
    let elements = (100 * scale.n) as usize;
    println!("| dequeuers | skip rate | lock skips | index hits | fifo waited grants | wait p50 ticks | wait p99 ticks |");
    println!("|----------:|----------:|-----------:|-----------:|-------------------:|---------------:|---------------:|");
    json.push_str("  \"dequeue\": [\n");
    let mut first = true;
    for threads in [1usize, 2, 4, 8] {
        let mut cells: Vec<rrq_obs::Snapshot> = Vec::new();
        for mode in [OrderingMode::SkipLocked, OrderingMode::StrictFifo] {
            let session = rrq_obs::Session::start();
            let repo = Arc::new(Repository::create(format!("e17-{threads}-{mode:?}")).unwrap());
            let mut meta = QueueMeta::with_defaults("q");
            meta.mode = mode;
            repo.qm().create_queue(meta).unwrap();
            let (h, _) = repo.qm().register("q", "filler", false).unwrap();
            for i in 0..elements {
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        &i.to_le_bytes(),
                        EnqueueOptions::default(),
                    )
                })
                .unwrap();
            }
            let handles: Vec<_> = (0..threads)
                .map(|d| {
                    let repo = Arc::clone(&repo);
                    rrq_core::threads::spawn_named(format!("e17-d{d}"), move || {
                        let (h, _) = repo.qm().register("q", &format!("d{d}"), false).unwrap();
                        loop {
                            let r = repo.autocommit(|t| {
                                let e = repo.qm().dequeue(
                                    t.id().raw(),
                                    &h,
                                    DequeueOptions::default(),
                                )?;
                                std::thread::sleep(Duration::from_micros(300));
                                Ok(e)
                            });
                            if r.is_err() {
                                return;
                            }
                        }
                    })
                })
                .collect();
            for hd in handles {
                hd.join().unwrap();
            }
            cells.push(session.snapshot());
        }
        let skip = &cells[0];
        let fifo = &cells[1];
        let ops = skip.counter("qm.dequeue.ops");
        let skips = skip.counter("qm.dequeue.lock_skips");
        let skip_rate = skips as f64 / ops.max(1) as f64;
        let hits = skip.counter("qm.dequeue.index_hits");
        let waited = fifo.counter("txn.lock.waited_grants");
        let (p50, p99) = fifo
            .histogram("txn.lock.wait_ticks")
            .map(|h| (h.quantile(0.5), h.quantile(0.99)))
            .unwrap_or((0, 0));
        println!(
            "| {threads:>9} | {skip_rate:>9.3} | {skips:>10} | {hits:>10} | {waited:>18} | {p50:>14} | {p99:>14} |"
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"skip_rate\": {skip_rate:.3}, \"lock_skips\": {skips}, \"fifo_waited_grants\": {waited}, \"wait_p50_ticks\": {p50}, \"wait_p99_ticks\": {p99}}}"
        ));
    }
    json.push_str("\n  ]\n}\n");
    println!();

    std::fs::write("BENCH_PR4.json", &json).unwrap();
    println!("Series written to BENCH_PR4.json.\n");
}

// ======================================================================
// E18 — striped coordination state: server-pool contention sweep
// ======================================================================

/// One E18 configuration: a server pool of `workers` over a shared-queue
/// bank workload on a repository opened with `shards` stripes. The WAL
/// pays a realistic force latency and requests think under their account
/// locks, so commits and thinks from different workers can overlap — which
/// is exactly the overlap a contended coordination mutex destroys.
fn e18_run(name: &str, workers: usize, shards: usize, n: u64) -> (f64, rrq_obs::Snapshot) {
    // Six accounts = three disjoint transfer classes: a 4-worker pool
    // already queues on account locks (waiters are what the shards=1
    // notify-everyone condvar turns into a thundering herd), while three
    // runnable classes still leave room for the pool to scale 1 → 4.
    const ACCOUNTS: u32 = 6;
    // Handler "think" is spun, not slept: it models request computation, so
    // it must consume CPU — at pool sizes that saturate the box, every
    // spurious coordination wakeup then steals cycles straight from the
    // served-request rate instead of hiding in scheduler idle time. The
    // 1 → 4 scaling headroom comes from overlapping the slept WAL force.
    let think = Duration::from_micros(100);
    let session = rrq_obs::Session::start();
    let opts = RepoOptions {
        shards,
        kv: KvOptions {
            sync_on_commit: true,
            group_commit: true,
            group_commit_window: Duration::from_micros(100),
        },
        wal_sync_latency: Some(Duration::from_micros(100)),
        wal_partitions: 1,
        dequeue_combining: false,
        repo_partitions: 1,
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, RepoDisks::new(), opts).unwrap();
    let repo = Arc::new(repo);
    for q in ["req", "reply.c"] {
        repo.create_queue_defaults(q).unwrap();
    }
    repo.qm()
        .update_queue("req", |m| m.retry_limit = 0)
        .unwrap();
    repo.tm().set_lock_timeout(Duration::from_secs(60));
    bank::seed_accounts(&repo, ACCOUNTS, 1_000_000).unwrap();
    let inner = bank::single_txn_handler();
    let handler: Handler = Arc::new(move |ctx, req| {
        let out = inner(ctx, req)?; // both account locks held from here on
        let t0 = Instant::now();
        while t0.elapsed() < think {
            std::hint::spin_loop();
        }
        Ok(out)
    });

    // A bank of parked transactions, each blocked in a 2PL wait on a lock a
    // long-running holder keeps for the whole run — the paper's picture of
    // a loaded server, where most requests sit in lock queues. They do no
    // work; they only *exist*. With one stripe they share the hot path's
    // condvar, so every commit's unlock wakes all of them to re-derive
    // waits-for edges under the one mutex; striped, their key lives on its
    // own stripe and the hot path never touches them.
    const PARKED: u64 = 24;
    const HOLDER: u64 = 9_000_000_000;
    let hub = LockKey::new(999, *b"e18/parked-hub");
    let locks = Arc::clone(repo.tm().locks());
    locks.try_lock(HOLDER, &hub, LockMode::Exclusive).unwrap();
    let parked: Vec<_> = (0..PARKED)
        .map(|j| {
            let locks = Arc::clone(&locks);
            let hub = hub.clone();
            rrq_core::threads::spawn_named(format!("e18-parked-{j}"), move || {
                let txn = HOLDER + 1 + j;
                let _ = locks.lock(txn, &hub, LockMode::Shared, Duration::from_secs(600));
                locks.unlock_all(txn);
            })
        })
        .collect();
    // Pre-load the whole request bank before the pool starts, over disjoint
    // consecutive account pairs — (0,1), (2,3), … — so a pool can actually
    // run `ACCOUNTS / 2` requests concurrently (the sequential
    // `i % accounts` pattern chains every adjacent request through a shared
    // account and serializes the pool no matter how the coordination state
    // is laid out). The driver's own enqueue transactions are off the
    // clock: the measurement is the pool draining the bank.
    let api = LocalQm::new(Arc::clone(&repo));
    api.register("req", "c", false).unwrap();
    api.register("reply.c", "c", false).unwrap();
    for i in 0..n {
        let from = ((i * 2) % u64::from(ACCOUNTS)) as u32;
        let t = Transfer {
            from,
            to: from + 1,
            amount: 10,
        };
        let req = Request::new(Rid::new("c", i + 1), "reply.c", "transfer", t.encode());
        api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
    }

    let t0 = Instant::now();
    let (_servers, handles, stop) = spawn_pool(&repo, "req", workers, handler).unwrap();
    // Each served request commits its reply into reply.c atomically with the
    // request dequeue, so the reply-queue depth counts completed requests
    // without the driver adding its own forced-WAL reply transactions to
    // the timed path.
    while (repo.qm().depth("reply.c").unwrap() as u64) < n {
        std::thread::sleep(Duration::from_micros(200));
    }
    let rate = n as f64 / t0.elapsed().as_secs_f64();
    // Snapshot before unparking the wait bank: its 2PL waits are granted
    // (and their block times observed) only once the holder releases, so
    // the wait histogram below covers workload transactions only.
    let snap = session.snapshot();
    stop.store(true, Ordering::Release);
    locks.unlock_all(HOLDER);
    for p in parked {
        p.join().unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }
    (rate, snap)
}

fn e18_shard_contention(scale: &Scale, smoke: bool) {
    println!("## E18 — sharded coordination state under a server-pool sweep\n");
    println!("Same repository, same bank workload, one knob: `RepoOptions::shards`.");
    println!("`shards: 1` is the pre-PR5 coordination layer (one lock-table mutex,");
    println!("one pending map, one whole-index lock); `shards: 16` is the striped");
    println!("default. Workers think 100µs under their account locks and every");
    println!("commit forces a 100µs WAL, so the available speedup is overlap —");
    println!("which the single coordination mutex (and its wake-everyone condvar)");
    println!("eats as the pool grows.\n");

    let worker_counts: &[usize] = if smoke { &[4] } else { &[1, 2, 4, 8] };
    let n = if smoke { 400 } else { 400 * scale.n };
    let mut json = String::from("{\n  \"experiment\": \"E18\",\n  \"series\": [\n");
    println!("| workers | shards=1 req/s | shards=16 req/s | striped/baseline | wait p99 ticks (1 → 16) | stripe contentions (1 → 16) |");
    println!("|--------:|---------------:|----------------:|-----------------:|------------------------:|----------------------------:|");
    let mut first = true;
    let mut smoke_pair = (0.0f64, 0.0f64);
    let mut striped_rates = Vec::new();
    for &workers in worker_counts {
        let mut row: Vec<(f64, u64, u64)> = Vec::new();
        for shards in [1usize, 16] {
            // Best of two trials: one-core schedulers are noisy enough to
            // swamp a contention effect with a single sample.
            let (mut rate, mut snap) =
                e18_run(&format!("e18-w{workers}-s{shards}-a"), workers, shards, n);
            let (rate_b, snap_b) =
                e18_run(&format!("e18-w{workers}-s{shards}-b"), workers, shards, n);
            if rate_b > rate {
                rate = rate_b;
                snap = snap_b;
            }
            let p99 = snap
                .histogram("txn.lock.wait_ticks")
                .map(|h| h.quantile(0.99))
                .unwrap_or(0);
            let contended = snap.counter("txn.lock.shard.contended")
                + snap.counter("qm.pending.shard.contended")
                + snap.counter("qm.qindex.shard.contended");
            let forces = snap.counter("storage.wal.forces");
            let per_force =
                snap.counter("storage.wal.records_synced") as f64 / forces.max(1) as f64;
            row.push((rate, p99, contended));
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"workers\": {workers}, \"shards\": {shards}, \"req_per_sec\": {rate:.1}, \"lock_wait_p99_ticks\": {p99}, \"stripe_contentions\": {contended}, \"wal_forces\": {forces}, \"records_per_force\": {per_force:.2}}}"
            ));
        }
        let (base, striped) = (row[0], row[1]);
        striped_rates.push(striped.0);
        if workers == 4 {
            smoke_pair = (base.0, striped.0);
        }
        println!(
            "| {workers:>7} | {} | {} | {:>15.2}x | {:>12} → {:>8} | {:>14} → {:>10} |",
            fmt_rate(base.0),
            fmt_rate(striped.0),
            striped.0 / base.0,
            base.1,
            striped.1,
            base.2,
            striped.2
        );
    }
    json.push_str("\n  ]\n}\n");
    println!();

    if smoke {
        // CI gate: at 4 workers the striped layer must at least hold the
        // baseline's throughput (small tolerance for a noisy shared box).
        let (base, striped) = smoke_pair;
        assert!(
            striped >= 0.9 * base,
            "E18 smoke: striped ({striped:.1} req/s) fell below shards=1 baseline ({base:.1} req/s) at 4 workers"
        );
        println!("E18 smoke: striped {striped:.1} req/s vs baseline {base:.1} req/s at 4 workers — ok.\n");
        return;
    }

    std::fs::write("BENCH_PR5.json", &json).unwrap();
    println!("Series written to BENCH_PR5.json.\n");
    let monotone = striped_rates.windows(2).take(2).all(|w| w[1] >= w[0]);
    if !monotone {
        println!("WARNING: striped throughput not monotone over 1→4 workers: {striped_rates:?}\n");
    }
}

// ======================================================================
// E19 — partitioned WAL: recovery time and commit throughput
// ======================================================================

/// Per-read device latency for the recovery measurements. `Wal::scan` issues
/// two reads per record (header, body), so charging each read makes recovery
/// wall time proportional to the *bytes a log device must deliver* — the
/// real-world cost — instead of to single-core CPU time, where N scan
/// threads on this box would show nothing. Reads on one device queue behind
/// each other; reads on different shard logs overlap, which is exactly the
/// claim the parallel-recovery measurement needs to test.
const E19_READ_LATENCY: Duration = Duration::from_micros(10);

/// Commit `commits` single-key transactions over `partitions` shard logs,
/// checkpointing every `ckpt_every` commits if asked, then crash every
/// device (clean power loss: volatile bytes drop, synced bytes survive).
fn e19_history(
    partitions: usize,
    commits: u64,
    ckpt_every: Option<u64>,
) -> (Vec<SimDisk>, SimDisk) {
    let wals: Vec<SimDisk> = (0..partitions).map(|_| SimDisk::new()).collect();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open_partitioned(
        wals.iter()
            .map(|d| Arc::new(d.clone()) as Arc<dyn Disk>)
            .collect(),
        Arc::new(ckpt.clone()),
        KvOptions::default(),
    )
    .unwrap();
    for i in 0..commits {
        let token = i + 1;
        store.begin(token).unwrap();
        // A rolling keyspace: hashes spread keys across every shard log.
        let key = [b'k', (i % 251) as u8, (i / 251) as u8];
        store.put(token, &key, &i.to_le_bytes()).unwrap();
        store.commit(token).unwrap();
        if let Some(every) = ckpt_every {
            if token % every == 0 {
                store.checkpoint().unwrap();
            }
        }
    }
    drop(store);
    for d in &wals {
        d.crash(CrashStyle::DropVolatile);
    }
    ckpt.crash(CrashStyle::DropVolatile);
    (wals, ckpt)
}

/// Reopen crashed devices with per-read latency on the logs and time the
/// recovery. Returns (wall time, redo records replayed).
fn e19_recover(wals: &[SimDisk], ckpt: &SimDisk) -> (Duration, usize) {
    let disks: Vec<Arc<dyn Disk>> = wals
        .iter()
        .map(|d| {
            Arc::new(
                LatencyDisk::new(Arc::new(d.clone()), Duration::ZERO)
                    .with_read_latency(E19_READ_LATENCY),
            ) as Arc<dyn Disk>
        })
        .collect();
    let t0 = Instant::now();
    let (store, report) =
        KvStore::open_partitioned(disks, Arc::new(ckpt.clone()), KvOptions::default()).unwrap();
    let elapsed = t0.elapsed();
    drop(store);
    (elapsed, report.replayed)
}

/// Commit-throughput cell: `threads` committers of single-key transactions
/// over `partitions` logs, each log a 100µs-per-force device. Returns req/s.
fn e19_throughput(partitions: usize, group: bool, threads: usize, per_thread: u64) -> f64 {
    let wals: Vec<Arc<dyn Disk>> = (0..partitions)
        .map(|_| {
            Arc::new(LatencyDisk::new(
                Arc::new(SimDisk::new()),
                Duration::from_micros(100),
            )) as Arc<dyn Disk>
        })
        .collect();
    let opts = KvOptions {
        sync_on_commit: true,
        group_commit: group,
        group_commit_window: Duration::from_micros(100),
    };
    let (store, _) = KvStore::open_partitioned(wals, Arc::new(SimDisk::new()), opts).unwrap();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            s.spawn(move || {
                for i in 0..per_thread {
                    let token = t as u64 * 1_000_000 + i + 1;
                    store.begin(token).unwrap();
                    // Thread-private keys: the measurement is log-device
                    // bandwidth, not write-write conflicts.
                    let key = [b't', t as u8, (i % 64) as u8];
                    store.put(token, &key, b"v").unwrap();
                    store.commit(token).unwrap();
                }
            });
        }
    });
    threads as u64 as f64 * per_thread as f64 / t0.elapsed().as_secs_f64()
}

fn e19_partitioned_wal(scale: &Scale, smoke: bool) {
    println!("## E19 — partitioned WAL: recovery and throughput\n");
    println!("Three questions about the shard-log design. (a) Do incremental");
    println!("checkpoints bound recovery by the delta since the last checkpoint");
    println!("rather than by history length? (b) Does scanning N logs in parallel");
    println!("beat one monolithic scan when log reads cost device time? (c) What");
    println!("does partitioning do to commit throughput when every force pays a");
    println!("100µs device delay — with and without group commit?\n");

    let mut json = String::from("{\n  \"experiment\": \"E19\",\n  \"recovery\": [\n");
    let mut first = true;

    // ---- (a) recovery vs history length, with and without checkpoints ----
    // Lengths ≡ 100 (mod 250): every history ends 100 commits past its last
    // checkpoint, so the checkpointed store has the *same* delta to replay
    // at every length — the flat line is the claim.
    let histories: &[u64] = if smoke {
        &[600, 2100]
    } else {
        &[600, 2100, 8100]
    };
    let ckpt_every = 250;
    println!("### Recovery time vs history length (partitions = 4, 10µs/read)\n");
    println!("| committed txns | no ckpt: recovery | no ckpt: redo | ckpt every {ckpt_every}: recovery | ckpt: redo |");
    println!("|---------------:|------------------:|--------------:|--------------------------:|-----------:|");
    let mut flat = Vec::new();
    let mut growing = Vec::new();
    for &n in histories {
        let (wals, ckpt) = e19_history(4, n, None);
        let (t_none, redo_none) = e19_recover(&wals, &ckpt);
        let (wals, ckpt) = e19_history(4, n, Some(ckpt_every));
        let (t_ckpt, redo_ckpt) = e19_recover(&wals, &ckpt);
        growing.push(t_none);
        flat.push(t_ckpt);
        println!(
            "| {n:>14} | {:>15.1}ms | {redo_none:>13} | {:>23.1}ms | {redo_ckpt:>10} |",
            t_none.as_secs_f64() * 1e3,
            t_ckpt.as_secs_f64() * 1e3
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"commits\": {n}, \"no_ckpt_ms\": {:.2}, \"no_ckpt_redo\": {redo_none}, \"ckpt_ms\": {:.2}, \"ckpt_redo\": {redo_ckpt}}}",
            t_none.as_secs_f64() * 1e3,
            t_ckpt.as_secs_f64() * 1e3
        ));
    }
    // The checkpointed store replays at most `ckpt_every` transactions no
    // matter how long the history is; the uncheckpointed one replays all of
    // them. Recovery time must reflect that shape.
    let spread = flat.last().unwrap().as_secs_f64() / flat[0].as_secs_f64().max(1e-9);
    println!(
        "\nCheckpointed recovery stays within {spread:.1}x across a {}x history spread;",
        histories.last().unwrap() / histories[0]
    );
    println!(
        "uncheckpointed grows {:.1}x.\n",
        growing.last().unwrap().as_secs_f64() / growing[0].as_secs_f64().max(1e-9)
    );

    // ---- (b) parallel scan vs monolithic scan ----
    let n = if smoke { 1000 } else { 4000 };
    println!("### Parallel recovery: one scan thread per shard log ({n} txns, no checkpoints)\n");
    println!("| partitions | recovery | speedup vs 1 |");
    println!("|-----------:|---------:|-------------:|");
    let mut mono_t = Duration::ZERO;
    json.push_str("\n  ],\n  \"parallel_recovery\": [\n");
    first = true;
    let parts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    for &p in parts {
        let (wals, ckpt) = e19_history(p, n, None);
        let (t, _) = e19_recover(&wals, &ckpt);
        if p == 1 {
            mono_t = t;
        }
        let speedup = mono_t.as_secs_f64() / t.as_secs_f64().max(1e-9);
        println!(
            "| {p:>10} | {:>6.1}ms | {speedup:>11.2}x |",
            t.as_secs_f64() * 1e3
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"partitions\": {p}, \"recovery_ms\": {:.2}, \"speedup\": {speedup:.2}}}",
            t.as_secs_f64() * 1e3
        ));
        if smoke && p == 4 {
            assert!(
                speedup >= 2.0,
                "E19 smoke: parallel recovery over 4 logs only {speedup:.2}x faster than monolithic (wanted >= 2x)"
            );
        }
    }
    println!();

    // ---- (c) commit throughput vs partition count ----
    let threads = 8;
    let per_thread = if smoke { 50 } else { 100 * scale.n };
    println!("### Commit throughput: {threads} committers, 100µs per force, single-key txns\n");
    println!("| partitions | per-commit sync req/s | group commit req/s |");
    println!("|-----------:|----------------------:|-------------------:|");
    json.push_str("\n  ],\n  \"throughput\": [\n");
    first = true;
    let tput_parts: &[usize] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    for &p in tput_parts {
        let solo = e19_throughput(p, false, threads, per_thread);
        let grouped = e19_throughput(p, true, threads, per_thread);
        println!(
            "| {p:>10} | {:>21} | {:>18} |",
            fmt_rate(solo),
            fmt_rate(grouped)
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"partitions\": {p}, \"per_commit_req_per_sec\": {solo:.1}, \"group_commit_req_per_sec\": {grouped:.1}}}"
        ));
    }
    json.push_str("\n  ]\n}\n");
    println!();

    // The `wal_partitions = 1` store must not tax the baseline: `open` and
    // `open_partitioned(1)` are the same machinery, so this is a regression
    // tripwire on the partitioned commit path itself.
    let baseline = {
        let (store, _) = KvStore::open(
            Arc::new(LatencyDisk::new(
                Arc::new(SimDisk::new()),
                Duration::from_micros(100),
            )),
            Arc::new(SimDisk::new()),
            KvOptions::default(),
        )
        .unwrap();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let token = t as u64 * 1_000_000 + i + 1;
                        store.begin(token).unwrap();
                        store
                            .put(token, &[b't', t as u8, (i % 64) as u8], b"v")
                            .unwrap();
                        store.commit(token).unwrap();
                    }
                });
            }
        });
        threads as u64 as f64 * per_thread as f64 / t0.elapsed().as_secs_f64()
    };
    let partitioned_1 = e19_throughput(1, true, threads, per_thread);
    println!(
        "Single-partition store vs `KvStore::open` baseline: {} vs {} req/s.\n",
        fmt_rate(partitioned_1),
        fmt_rate(baseline)
    );
    if smoke {
        assert!(
            partitioned_1 >= 0.95 * baseline,
            "E19 smoke: wal_partitions=1 ({partitioned_1:.1} req/s) fell below 0.95x the open() baseline ({baseline:.1} req/s)"
        );
        println!("E19 smoke: parallel recovery and single-partition throughput gates — ok.\n");
        return;
    }

    std::fs::write("BENCH_PR7.json", &json).unwrap();
    println!("Series written to BENCH_PR7.json.\n");
}

// ======================================================================
// E20 — flat-combining dequeue front end: hot-queue dequeuer sweep
// ======================================================================

/// One E20 cell: `dequeuers` threads drain `elements` preloaded elements
/// from a single hot skip-locked queue, with the flat-combining dispenser
/// on or off. Default (in-memory, unsynced) storage keeps commits cheap, so
/// the measurement isolates the candidate-selection front end: the baseline
/// pays one 64-key ready-index page per attempt per dequeuer plus a
/// skip-grab on every candidate a peer already holds; combining pays one
/// combiner pass handing out disjoint candidates. Threads exit when the
/// queue reports empty; el/s is the drain rate.
fn e20_run(
    name: &str,
    dequeuers: usize,
    combining: bool,
    elements: u64,
) -> (f64, rrq_obs::Snapshot) {
    let session = rrq_obs::Session::start();
    let opts = RepoOptions {
        dequeue_combining: combining,
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, RepoDisks::new(), opts).unwrap();
    let repo = Arc::new(repo);
    repo.create_queue_defaults("hot").unwrap();
    let (h, _) = repo.qm().register("hot", "filler", false).unwrap();
    for i in 0..elements {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                &i.to_le_bytes(),
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }
    let t0 = Instant::now();
    let handles: Vec<_> = (0..dequeuers)
        .map(|d| {
            let repo = Arc::clone(&repo);
            rrq_core::threads::spawn_named(format!("e20-d{d}"), move || {
                let (h, _) = repo.qm().register("hot", &format!("d{d}"), false).unwrap();
                while repo
                    .autocommit(|t| {
                        repo.qm()
                            .dequeue(t.id().raw(), &h, DequeueOptions::default())
                    })
                    .is_ok()
                {}
            })
        })
        .collect();
    for hd in handles {
        hd.join().unwrap();
    }
    let rate = elements as f64 / t0.elapsed().as_secs_f64();
    (rate, session.snapshot())
}

fn e20_skip_rate(snap: &rrq_obs::Snapshot) -> f64 {
    snap.counter("qm.dequeue.lock_skips") as f64 / snap.counter("qm.dequeue.ops").max(1) as f64
}

fn e20_wait_p99(snap: &rrq_obs::Snapshot) -> u64 {
    snap.histogram("qm.qindex.shard.acquire_wait_ticks")
        .map(|h| h.quantile(0.99))
        .unwrap_or(0)
}

fn e20_combining_dequeue(scale: &Scale, smoke: bool) {
    println!("## E20 — flat-combining dequeue front end on one hot queue\n");
    println!("One skip-locked queue, 1 → 64 dequeuers, same preloaded bank, one");
    println!("knob: `RepoOptions::dequeue_combining`. Baseline dequeuers race the");
    println!("per-queue ready index independently — each pages the BTreeMap and");
    println!("skip-grabs candidates its peers already hold (E17 measured the skip");
    println!("rate growing like n−1). Combining publishes the requests instead:");
    println!("one combiner drains the map once and hands out disjoint candidates,");
    println!("so skips collapse toward zero and the per-queue mutex stops being");
    println!("the n-way convoy.\n");

    let dequeuer_counts: &[usize] = if smoke {
        &[8]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let elements = if smoke { 6_000 } else { 2_000 * scale.n };
    // Best-of-N trials, as in E18: a one-core scheduler is noisy enough to
    // swamp a front-end effect with a single sample; the smoke gate takes an
    // extra trial since an assertion hangs CI on one unlucky schedule.
    let trials = if smoke { 3 } else { 2 };
    let mut json = String::from("{\n  \"experiment\": \"E20\",\n  \"series\": [\n");
    println!("| dequeuers | baseline el/s | combining el/s | comb/base | skip rate (base → comb) | qindex wait p99 ticks (base → comb) | ops/round p50 | batch p50 |");
    println!("|----------:|--------------:|---------------:|----------:|------------------------:|------------------------------------:|--------------:|----------:|");
    let mut first = true;
    let mut smoke_cell = (0.0f64, 0.0f64, 0.0f64);
    let mut combining_rates = Vec::new();
    for &dequeuers in dequeuer_counts {
        let mut row: Vec<(f64, rrq_obs::Snapshot)> = Vec::new();
        for combining in [false, true] {
            let tag = if combining { "comb" } else { "base" };
            let mut best: Option<(f64, rrq_obs::Snapshot)> = None;
            for t in 0..trials {
                let cell = e20_run(
                    &format!("e20-d{dequeuers}-{tag}-{t}"),
                    dequeuers,
                    combining,
                    elements,
                );
                if best.as_ref().is_none_or(|(r, _)| cell.0 > *r) {
                    best = Some(cell);
                }
            }
            row.push(best.unwrap());
        }
        let (base_rate, base) = (&row[0].0, &row[0].1);
        let (comb_rate, comb) = (&row[1].0, &row[1].1);
        combining_rates.push(*comb_rate);
        let (base_skip, comb_skip) = (e20_skip_rate(base), e20_skip_rate(comb));
        let (base_p99, comb_p99) = (e20_wait_p99(base), e20_wait_p99(comb));
        let rounds = comb.counter("qm.combine.rounds");
        let ops_p50 = comb
            .histogram("qm.combine.ops_per_round")
            .map(|h| h.quantile(0.5))
            .unwrap_or(0);
        let batch_p50 = comb
            .histogram("qm.combine.batch_size")
            .map(|h| h.quantile(0.5))
            .unwrap_or(0);
        let invalidations = comb.counter("qm.combine.handout_invalidations");
        if dequeuers == 8 {
            smoke_cell = (*base_rate, *comb_rate, comb_skip);
        }
        println!(
            "| {dequeuers:>9} | {} | {} | {:>8.2}x | {base_skip:>11.3} → {comb_skip:>7.3} | {base_p99:>17} → {comb_p99:>13} | {ops_p50:>13} | {batch_p50:>9} |",
            fmt_rate(*base_rate),
            fmt_rate(*comb_rate),
            comb_rate / base_rate,
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"dequeuers\": {dequeuers}, \"baseline_el_per_sec\": {base_rate:.1}, \"combining_el_per_sec\": {comb_rate:.1}, \"baseline_skip_rate\": {base_skip:.3}, \"combining_skip_rate\": {comb_skip:.3}, \"baseline_qindex_wait_p99_ticks\": {base_p99}, \"combining_qindex_wait_p99_ticks\": {comb_p99}, \"combine_rounds\": {rounds}, \"ops_per_round_p50\": {ops_p50}, \"batch_size_p50\": {batch_p50}, \"handout_invalidations\": {invalidations}}}"
        ));
    }
    json.push_str("\n  ]\n}\n");
    println!();

    if smoke {
        // CI gate: at 8 dequeuers combining must beat the baseline drain
        // rate by 1.2x and hand out disjoint candidates (skip rate under
        // 0.1 per successful dequeue, where the baseline runs near n−1).
        let (base, comb, comb_skip) = smoke_cell;
        assert!(
            comb >= 1.2 * base,
            "E20 smoke: combining ({comb:.1} el/s) below 1.2x baseline ({base:.1} el/s) at 8 dequeuers"
        );
        assert!(
            comb_skip < 0.1,
            "E20 smoke: combining skip rate {comb_skip:.3} not ≈ 0 at 8 dequeuers"
        );
        println!("E20 smoke: combining {comb:.1} el/s vs baseline {base:.1} el/s at 8 dequeuers, skip rate {comb_skip:.3} — ok.\n");
        return;
    }

    std::fs::write("BENCH_PR8.json", &json).unwrap();
    println!("Series written to BENCH_PR8.json.\n");
    let from8 = &combining_rates[3..];
    let monotone_down = from8.windows(2).all(|w| w[1] < w[0]);
    if monotone_down {
        println!(
            "WARNING: combining el/s still monotone-decreasing over 8 → 64 dequeuers: {from8:?}\n"
        );
    }
}

// ======================================================================
// E21 — shared-nothing repository partitions: scaling sweep
// ======================================================================

/// Find (and create) a queue homed on partition `p`, deterministically.
fn e21_queue_on(repo: &Repository, p: usize, tag: &str) -> String {
    for j in 0..256 {
        let q = format!("{tag}x{j}");
        if repo.partition_of(&q) == p {
            repo.create_queue_defaults(&q).unwrap();
            return q;
        }
    }
    panic!("no queue name for partition {p} in 256 tries");
}

/// One E21 cell: 8 workers drive a fixed offered load of bank payments
/// against a cluster of `parts` shared-nothing partitions. Each payment
/// updates the payer's balance on its home store and enqueues a credit
/// record — to a co-located queue normally, to a queue on the *next*
/// partition for `cross_pct`% of payments (a logged two-phase commit).
/// Alternating ops consume the worker's own queue, so depths stay bounded.
/// Every commit pays a 100µs WAL force with group commit off: the force is
/// the resource being partitioned, exactly the shared-nothing claim.
fn e21_run(name: &str, parts: usize, cross_pct: u64, per_worker: u64) -> f64 {
    const WORKERS: usize = 8;
    let opts = RepoOptions {
        repo_partitions: parts,
        kv: KvOptions {
            sync_on_commit: true,
            group_commit: false,
            ..KvOptions::default()
        },
        wal_sync_latency: Some(Duration::from_micros(100)),
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, RepoDisks::new(), opts).unwrap();
    let repo = Arc::new(repo);
    let locals: Vec<String> = (0..WORKERS)
        .map(|w| e21_queue_on(&repo, w % parts, &format!("l{w}")))
        .collect();
    let remotes: Vec<String> = (0..WORKERS)
        .map(|w| e21_queue_on(&repo, (w + 1) % parts, &format!("r{w}")))
        .collect();

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let repo = Arc::clone(&repo);
            let src = locals[w].clone();
            let far = remotes[w].clone();
            s.spawn(move || {
                let reg = format!("w{w}");
                let (hs, _) = repo.qm_for(&src).register(&src, &reg, false).unwrap();
                let (hf, _) = repo.qm_for(&far).register(&far, &reg, false).unwrap();
                let acct = format!("acct/{w}").into_bytes();
                for i in 0..per_worker {
                    let (txn, home) = repo.begin_on(&src).unwrap();
                    let t = txn.id().raw();
                    if i % 2 == 0 {
                        if i % 100 < cross_pct {
                            let qm = repo.enlist_queue(&txn, home, &far).unwrap();
                            qm.enqueue(t, &hf, b"pay", EnqueueOptions::default())
                                .unwrap();
                        } else {
                            repo.qm_for(&src)
                                .enqueue(t, &hs, b"pay", EnqueueOptions::default())
                                .unwrap();
                        }
                    } else {
                        let _ = repo.qm_for(&src).dequeue(t, &hs, DequeueOptions::default());
                    }
                    repo.store_at(home).put(t, &acct, &i.to_le_bytes()).unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    WORKERS as f64 * per_worker as f64 / t0.elapsed().as_secs_f64()
}

fn e21_partition_scaling(scale: &Scale, smoke: bool) {
    println!("## E21 — shared-nothing repository partitions: bank scaling sweep\n");
    println!("Fixed offered load (8 workers), partitions 1 → 8, every commit");
    println!("forcing a 100µs WAL write. A partition owns its queues, its log");
    println!("group, its locks and its store, so partition-local payments from");
    println!("different partitions never serialize on a shared force. The 10%");
    println!("cross-partition column routes every tenth payment to a sibling's");
    println!("queue through the logged two-phase protocol — the price of");
    println!("leaving the shared-nothing fast path.\n");

    let parts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let per_worker = if smoke { 400 } else { 600 * scale.n };
    let trials = if smoke { 3 } else { 2 };
    let mut json = String::from("{\n  \"experiment\": \"E21\",\n  \"series\": [\n");
    println!("| partitions | 0% cross req/s | vs 1p | 10% cross req/s | vs 1p | 10% / 0% |");
    println!("|-----------:|---------------:|------:|----------------:|------:|---------:|");
    let mut first = true;
    let mut base_by_cross = [0.0f64; 2];
    let mut smoke_pair = (0.0f64, 0.0f64);
    for &p in parts {
        let mut rates = [0.0f64; 2];
        for (ci, &cross) in [0u64, 10].iter().enumerate() {
            let mut best = 0.0f64;
            for t in 0..trials {
                let r = e21_run(&format!("e21-p{p}-c{cross}-{t}"), p, cross, per_worker);
                best = best.max(r);
            }
            rates[ci] = best;
            if p == 1 {
                base_by_cross[ci] = best;
            }
        }
        if p == 1 {
            smoke_pair.0 = rates[0];
        }
        if p == 4 {
            smoke_pair.1 = rates[0];
        }
        println!(
            "| {p:>10} | {:>14} | {:>4.2}x | {:>15} | {:>4.2}x | {:>7.2}x |",
            fmt_rate(rates[0]),
            rates[0] / base_by_cross[0],
            fmt_rate(rates[1]),
            rates[1] / base_by_cross[1],
            rates[1] / rates[0],
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"partitions\": {p}, \"cross0_req_per_sec\": {:.1}, \"cross10_req_per_sec\": {:.1}}}",
            rates[0], rates[1]
        ));
    }
    json.push_str("\n  ]\n}\n");
    println!();

    if smoke {
        let (one, four) = smoke_pair;
        assert!(
            four >= 1.5 * one,
            "E21 smoke: 4 partitions ({four:.1} req/s) below 1.5x the 1-partition baseline ({one:.1} req/s) at 0% cross"
        );
        println!(
            "E21 smoke: 4 partitions {four:.1} req/s vs 1 partition {one:.1} req/s at 0% cross — ok.\n"
        );
        return;
    }

    std::fs::write("BENCH_PR9.json", &json).unwrap();
    println!("Series written to BENCH_PR9.json.\n");
}

// ======================================================================
// E22 — planned vs locked execution: the contention crossover
// ======================================================================

/// Deterministic E22 workload: `hot_pct`% of transfers draw both accounts
/// from a 2-account hot set (the 2PL pathology — every pair conflicts and
/// half the lock orders can deadlock), the rest spread uniformly over the
/// cold majority.
fn e22_fill(repo: &Repository, seed: u64, n: u64, hot_pct: u64, accounts: u32) {
    use rrq_workload::arrivals::SplitMix;
    let mut rng = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let (h, _) = repo.qm().register("req", "fill", false).unwrap();
    for serial in 1..=n {
        let hot = rng.next_u64() % 100 < hot_pct;
        let span = if hot { 2 } else { u64::from(accounts) };
        let base = if hot { 0 } else { 2 };
        let from = base + (rng.next_u64() % span) as u32 % accounts;
        let to = base + (rng.next_u64() % span) as u32 % accounts;
        let t = Transfer {
            from,
            to,
            amount: 1 + (rng.next_u64() % 50) as i64,
        };
        let req = Request::new(Rid::new("c1", serial), "reply.c1", "transfer", t.encode());
        repo.autocommit(|tx| {
            repo.qm().enqueue(
                tx.id().raw(),
                &h,
                &req.encode_to_vec(),
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }
}

/// Open an E22 repository: best-known locked configuration (flat-combining
/// dequeues + group commit, PR 8/3) against the planned pool. No simulated
/// WAL-force latency: with an expensive force the planned side's one-force-
/// per-epoch amortization wins everywhere and hides the contention story
/// this experiment is about. The request queue retries without limit so
/// deadlock-victim redisposition (the thing being measured at high
/// contention) never dead-letters an element.
fn e22_repo(name: &str, mode: rrq_qm::repository::ExecMode) -> Arc<Repository> {
    use rrq_qm::repository::ExecMode;
    let opts = RepoOptions {
        exec_mode: mode,
        dequeue_combining: mode == ExecMode::Locked,
        kv: KvOptions {
            sync_on_commit: true,
            group_commit: true,
            ..KvOptions::default()
        },
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, RepoDisks::new(), opts).unwrap();
    let repo = Arc::new(repo);
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 0;
    repo.qm().create_queue(req).unwrap();
    repo.create_queue_defaults("reply.c1").unwrap();
    repo
}

/// Pre-PR control: the same drain on a repository opened through the plain
/// [`Repository::create`] constructor (all-default options, so the locked
/// 2PL path exactly as it ran before the `exec_mode` knob existed, without
/// even the combining front end). The smoke gate holds the knob-opened
/// locked cell to >= 0.95x of this — if the planned-mode machinery ever
/// taxed the locked fast path, this is the tripwire.
fn e22_baseline_run(name: &str, seed: u64, n: u64) -> f64 {
    let repo = Arc::new(Repository::create(name).unwrap());
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 0;
    repo.qm().create_queue(req).unwrap();
    repo.create_queue_defaults("reply.c1").unwrap();
    bank::seed_accounts(&repo, 64, 100_000).unwrap();
    e22_fill(&repo, seed, n, 0, 64);
    let t0 = Instant::now();
    let (_, handles, stop) = spawn_pool(&repo, "req", 8, bank::single_txn_handler()).unwrap();
    while repo.qm().depth("reply.c1").unwrap() < n as usize {
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Release);
    for t in handles {
        let _ = t.join();
    }
    n as f64 / elapsed.as_secs_f64()
}

/// One E22 cell: `n` pre-filled transfers drained to the reply queue by
/// eight locked servers or an eight-worker planned pool. Returns requests
/// per second of the drain.
fn e22_run(name: &str, planned: bool, seed: u64, n: u64, hot_pct: u64) -> f64 {
    use rrq_core::planned::{PlannedConfig, PlannedPool};
    use rrq_qm::repository::ExecMode;
    const ACCOUNTS: u32 = 64;
    let mode = if planned {
        ExecMode::Planned
    } else {
        ExecMode::Locked
    };
    let repo = e22_repo(name, mode);
    bank::seed_accounts(&repo, ACCOUNTS, 100_000).unwrap();
    e22_fill(&repo, seed, n, hot_pct, ACCOUNTS);

    let t0 = Instant::now();
    let (threads, stop) = if planned {
        let mut cfg = PlannedConfig::new("e22-pl", "req");
        cfg.workers = 8;
        cfg.batch_max = 64;
        let pool = PlannedPool::new(
            Arc::clone(&repo),
            cfg,
            bank::single_txn_handler(),
            bank::transfer_access(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        (pool.spawn(Arc::clone(&stop)), stop)
    } else {
        let (_, handles, stop) = spawn_pool(&repo, "req", 8, bank::single_txn_handler()).unwrap();
        (handles, stop)
    };
    while repo.qm().depth("reply.c1").unwrap() < n as usize {
        std::thread::sleep(Duration::from_micros(200));
    }
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::Release);
    for t in threads {
        let _ = t.join();
    }
    assert_eq!(repo.qm().depth("req").unwrap(), 0);
    n as f64 / elapsed.as_secs_f64()
}

fn e22_planned_crossover(scale: &Scale, smoke: bool) {
    println!("## E22 — planned vs locked execution: contention crossover\n");
    println!("Eight executors drain a pre-filled request queue of bank");
    println!("transfers; the hot column is the share of transfers confined to");
    println!("two accounts. The locked side is the repo's best 2PL stack");
    println!("(flat-combining dequeues, group commit): at low contention its");
    println!("servers run fully parallel, and conflicts only tax it as the hot");
    println!("share grows — lock waits, deadlock victims, redispositions. The");
    println!("planned side pays a fixed epoch toll (the serial plan phase, one");
    println!("WAL force and one index apply per batch) regardless of");
    println!("contention: per-key queues serialize hot transfers without ever");
    println!("blocking or deadlocking. The claim is the crossover, not a");
    println!("uniform win.\n");

    let hots: &[u64] = if smoke {
        &[0, 100]
    } else {
        &[0, 25, 50, 75, 100]
    };
    let n = if smoke { 1500 } else { 1200 * scale.n };
    let trials = if smoke { 2 } else { 3 };
    println!("| hot % | locked req/s | planned req/s | planned / locked |");
    println!("|------:|-------------:|--------------:|-----------------:|");
    let mut json = String::from("{\n  \"experiment\": \"E22\",\n  \"series\": [\n");
    let mut first = true;
    let mut cells: Vec<(u64, f64, f64)> = Vec::new();
    for &hot in hots {
        let (mut locked, mut planned) = (0.0f64, 0.0f64);
        for t in 0..trials {
            locked = locked.max(e22_run(
                &format!("e22-l-h{hot}-{t}"),
                false,
                hot + t,
                n,
                hot,
            ));
            planned = planned.max(e22_run(&format!("e22-p-h{hot}-{t}"), true, hot + t, n, hot));
        }
        println!(
            "| {hot:>5} | {:>12} | {:>13} | {:>15.2}x |",
            fmt_rate(locked),
            fmt_rate(planned),
            planned / locked
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"hot_pct\": {hot}, \"locked_req_per_sec\": {locked:.1}, \"planned_req_per_sec\": {planned:.1}}}"
        ));
        cells.push((hot, locked, planned));
    }
    json.push_str("\n  ]\n}\n");
    println!();

    if smoke {
        let (_, l100m, p100) = cells[cells.len() - 1];
        assert!(
            p100 >= 1.2 * l100m,
            "E22 smoke: planned ({p100:.1} req/s) below 1.2x locked ({l100m:.1} req/s) at 100% hot"
        );
        // Pre-PR regression tripwire, trials interleaved so both sides see
        // the same machine weather. The knob-opened cell also runs the
        // combining front end (PR 8), so it holds a structural margin over
        // the plain pre-PR constructor; 0.95x leaves room for noise only.
        let (mut pre, mut knob) = (0.0f64, 0.0f64);
        for t in 0..3u64 {
            pre = pre.max(e22_baseline_run(&format!("e22-pre-{t}"), t, n));
            knob = knob.max(e22_run(&format!("e22-knob-{t}"), false, t, n, 0));
        }
        assert!(
            knob >= 0.95 * pre,
            "E22 smoke: exec_mode-knob locked ({knob:.1} req/s) below 0.95x the pre-PR constructor baseline ({pre:.1} req/s) — the locked path regressed"
        );
        println!(
            "E22 smoke: hot=100 planned {p100:.1} vs locked {l100m:.1} req/s ({:.2}x); locked knob {knob:.1} vs pre-PR baseline {pre:.1} req/s ({:.2}x) — gates hold.\n",
            p100 / l100m,
            knob / pre
        );
        return;
    }

    std::fs::write("BENCH_PR10.json", &json).unwrap();
    println!("Series written to BENCH_PR10.json.\n");
}
