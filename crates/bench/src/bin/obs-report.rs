//! obs-report: drive a canonical repository workload and print the rrq-obs
//! snapshot after each phase, as a diff against the previous phase — a
//! human-readable tour of the metric catalogue (`crates/obs/METRICS.md`)
//! using only the snapshot/diff/render export API.
//!
//! ```sh
//! cargo run --release -p rrq-bench --bin obs-report            # per-phase diffs
//! cargo run --release -p rrq-bench --bin obs-report -- --full  # plus cumulative dump
//! ```
//!
//! The bin only *reads* metrics; every recording call site lives in the
//! production crates, so what prints here is exactly what the explorer's
//! metrics-conservation oracle sees.

use rrq_obs::{Session, Snapshot};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, Repository};
use rrq_storage::disk::TornWriteMode;
use std::sync::Arc;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let session = Session::start();

    let disks = RepoDisks::new();
    let (repo, _) = Repository::open("obs-report", disks.clone()).unwrap();
    let repo = Arc::new(repo);
    repo.create_queue_defaults("q").unwrap();
    let (h, _) = repo.qm().register("q", "reporter", false).unwrap();

    let mut prev = session.snapshot();
    let phase = |title: &str, prev: &mut Snapshot| {
        let now = session.snapshot();
        println!("== {title} ==");
        let rendered = now.diff(prev).render();
        if rendered.is_empty() {
            println!("(no metric movement)");
        } else {
            print!("{rendered}");
        }
        println!();
        *prev = now;
    };

    // Phase 1: an enqueue burst — WAL appends/forces, enqueue counters, and
    // the depth gauge climbing.
    for i in 0..64u32 {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                &i.to_le_bytes(),
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }
    phase("enqueue burst (64 elements)", &mut prev);

    // Phase 2: dequeues with aborts — every third transaction aborts, so the
    // disposition fix-up (requeue / error-queue moves) shows up alongside
    // committed dequeues and lock hold-time observations.
    for i in 0..48u32 {
        let txn = repo.begin().unwrap();
        let got = repo
            .qm()
            .dequeue(txn.id().raw(), &h, DequeueOptions::default());
        match got {
            Ok(_) if i % 3 == 0 => txn.abort().unwrap(),
            Ok(_) => txn.commit().unwrap(),
            Err(_) => {
                txn.abort().unwrap();
                break;
            }
        }
    }
    phase("dequeue with aborts (every third aborts)", &mut prev);

    // Phase 3: a torn crash and reopen — recovery replay, tail truncation,
    // and the index rebuild re-arming the depth gauge.
    disks.crash_with(Some(TornWriteMode::Midway));
    drop(repo);
    let (repo2, report) = Repository::open("obs-report", disks).unwrap();
    phase("torn crash + recovery", &mut prev);
    let (total, gauge) = repo2.qm().depth_accounting();
    println!(
        "recovery replayed {} records; live elements {total}, depth gauge {gauge}\n",
        report.replayed
    );

    if full {
        println!("== cumulative ==");
        print!("{}", session.snapshot().render());
    }
}
