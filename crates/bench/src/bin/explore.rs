//! The fault-schedule explorer sweep runner.
//!
//! ```sh
//! cargo run --release -p rrq-bench --bin explore                      # 1000 scripts
//! cargo run --release -p rrq-bench --bin explore -- --scripts 200 \
//!     --seed 1 --budget-secs 240 --out target/explorer-failures
//! cargo run --release -p rrq-bench --bin explore -- --replay path.rrqs
//! cargo run --release -p rrq-bench --bin explore -- --scripts 50 --bug
//! cargo run --release -p rrq-bench --bin explore -- --scripts 200 --wal-partitions 4
//! cargo run --release -p rrq-bench --bin explore -- --scripts 200 --dequeue-combining
//! cargo run --release -p rrq-bench --bin explore -- --scripts 200 --repo-partitions 4
//! cargo run --release -p rrq-bench --bin explore -- --scripts 200 --exec-mode planned
//! ```
//!
//! Runs seeded [`rrq_sim::script::FaultScript`]s through the explorer,
//! prints progress and the sweep digest, re-verifies the first few seeds for
//! digest stability, and exits non-zero if any oracle fired (printing the
//! failing seed and the persisted script path). `--bug [skip-rereceive]`
//! injects the deliberate skip-rereceive client bug, `--bug double-count`
//! the metrics double-count bug; both *expect* failures — proving the
//! oracle battery bites — then shrink the first failure.

use rrq_qm::repository::ExecMode;
use rrq_sim::explorer::{self, ExplorerConfig, InjectedBug};
use rrq_sim::script::FaultScript;
use rrq_sim::shrink;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    scripts: u64,
    seed: u64,
    budget_secs: u64,
    out: PathBuf,
    replay: Option<PathBuf>,
    bug: Option<InjectedBug>,
    wal_partitions: usize,
    dequeue_combining: bool,
    repo_partitions: usize,
    exec_mode: ExecMode,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scripts: 1000,
        seed: 1,
        budget_secs: 600,
        out: PathBuf::from("target/explorer-failures"),
        replay: None,
        bug: None,
        wal_partitions: 1,
        dequeue_combining: false,
        repo_partitions: 1,
        exec_mode: ExecMode::default(),
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scripts" => args.scripts = val("--scripts")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--budget-secs" => {
                args.budget_secs = val("--budget-secs")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--wal-partitions" => {
                args.wal_partitions = val("--wal-partitions")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--dequeue-combining" => args.dequeue_combining = true,
            "--repo-partitions" => {
                args.repo_partitions = val("--repo-partitions")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--exec-mode" => {
                args.exec_mode = match val("--exec-mode")?.as_str() {
                    "locked" => ExecMode::Locked,
                    "planned" => ExecMode::Planned,
                    other => return Err(format!("unknown exec mode {other}")),
                }
            }
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--bug" => {
                // Optional bug name; a bare `--bug` keeps its original
                // meaning (the skip-rereceive client bug).
                args.bug = Some(match it.peek().map(String::as_str) {
                    Some("skip-rereceive") => {
                        it.next();
                        InjectedBug::SkipRereceive
                    }
                    Some("double-count") => {
                        it.next();
                        InjectedBug::DoubleCountEnqueue
                    }
                    Some(other) if !other.starts_with("--") => {
                        return Err(format!("unknown bug {other}"))
                    }
                    _ => InjectedBug::SkipRereceive,
                });
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("explore: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ExplorerConfig {
        bug: args.bug,
        out_dir: Some(args.out.clone()),
        wal_partitions: args.wal_partitions,
        dequeue_combining: args.dequeue_combining,
        repo_partitions: args.repo_partitions,
        exec_mode: args.exec_mode,
        ..ExplorerConfig::default()
    };

    if let Some(path) = &args.replay {
        let (script, outcome) = match explorer::replay_file(path, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("explore: replay failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "replayed {path:?} (seed {}, {} events)",
            script.seed,
            script.events.len()
        );
        println!("digest {:016x}", outcome.digest);
        for line in &outcome.trace {
            println!("  {line}");
        }
        return if outcome.failed() {
            eprintln!("replay: {} violation(s)", outcome.violations.len());
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let start = Instant::now();
    println!(
        "exploring {} scripts from seed {} (budget {}s, failures -> {:?})",
        args.scripts, args.seed, args.budget_secs, args.out
    );

    // One conformance session per chunk keeps progress printing cheap while
    // still resetting the checker between scripts (run_sweep does that).
    let mut failures = Vec::new();
    let mut digests = Vec::new();
    let mut run_count = 0u64;
    let chunk = 100u64;
    let mut next_seed = args.seed;
    let end_seed = args.seed.saturating_add(args.scripts);
    while next_seed < end_seed {
        let n = chunk.min(end_seed - next_seed);
        let report = explorer::run_sweep(next_seed, n, &cfg);
        run_count += report.scripts_run;
        digests.push(report.digest_of_digests);
        for f in &report.failures {
            eprintln!(
                "FAIL seed {} ({} violations) script -> {:?}",
                f.seed,
                f.outcome.violations.len(),
                f.script_path
            );
            for v in &f.outcome.violations {
                eprintln!("  {v}");
            }
        }
        failures.extend(report.failures);
        println!(
            "  {run_count}/{} scripts, {} failures, {:.1}s elapsed",
            args.scripts,
            failures.len(),
            start.elapsed().as_secs_f64()
        );
        next_seed += n;
        if start.elapsed().as_secs() > args.budget_secs {
            eprintln!("explore: wall-time budget exhausted after {run_count} scripts");
            break;
        }
    }

    // Digest stability: re-run the first seeds and compare.
    let verify_n = 3.min(run_count);
    if verify_n > 0 {
        let again = explorer::run_sweep(args.seed, verify_n, &cfg);
        let first: Vec<u64> = (args.seed..args.seed + verify_n)
            .map(|s| {
                let script = FaultScript::generate(s);
                explorer::run_script(&script, &cfg).digest
            })
            .collect();
        let reagain: Vec<u64> = (args.seed..args.seed + verify_n)
            .map(|s| {
                let script = FaultScript::generate(s);
                explorer::run_script(&script, &cfg).digest
            })
            .collect();
        if first != reagain {
            eprintln!("explore: NONDETERMINISM: re-run digests differ: {first:x?} vs {reagain:x?}");
            return ExitCode::FAILURE;
        }
        println!(
            "determinism check: first {verify_n} seeds re-ran identically (chunk digest {:016x})",
            again.digest_of_digests
        );
    }

    let mut sweep_digest = 0xcbf2_9ce4_8422_2325u64;
    for d in &digests {
        for &b in &d.to_le_bytes() {
            sweep_digest ^= u64::from(b);
            sweep_digest = sweep_digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    println!(
        "swept {run_count} scripts in {:.1}s; sweep digest {sweep_digest:016x}; {} failures",
        start.elapsed().as_secs_f64(),
        failures.len()
    );

    if args.bug.is_some() {
        // The injected bug must be caught, and the first failure must shrink
        // to a tiny replayable script.
        if failures.is_empty() {
            eprintln!("explore: --bug produced no failures; the oracles are asleep");
            return ExitCode::FAILURE;
        }
        let first = &failures[0];
        let report = shrink::shrink(&first.script, &cfg);
        let path = args.out.join(format!("shrunk-seed-{}.rrqs", first.seed));
        if let Err(e) = report.script.write_to(&path) {
            eprintln!("explore: could not persist shrunk script: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "shrunk seed {} from {} to {} event(s) in {} runs -> {:?}",
            first.seed,
            first.script.events.len(),
            report.script.events.len(),
            report.attempts,
            path
        );
        return ExitCode::SUCCESS;
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "explore: {} failing script(s); replay with --replay <path>",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
