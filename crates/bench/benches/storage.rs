//! E13 — the §10 "main-memory database with a log" design point: commit
//! cost with and without the forced log, checkpoint cost, and recovery time
//! as a function of log length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_storage::disk::SimDisk;
use rrq_storage::kv::{KvOptions, KvStore};
use std::sync::Arc;

fn open(sync_on_commit: bool) -> (Arc<KvStore>, SimDisk, SimDisk) {
    let wal = SimDisk::new();
    let ckpt = SimDisk::new();
    let (store, _) = KvStore::open(
        Arc::new(wal.clone()),
        Arc::new(ckpt.clone()),
        KvOptions {
            sync_on_commit,
            ..KvOptions::default()
        },
    )
    .unwrap();
    (store, wal, ckpt)
}

fn bench_commit_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_commit");
    for (name, sync) in [("forced_log", true), ("volatile", false)] {
        g.bench_function(name, |b| {
            let (store, _, _) = open(sync);
            let mut t = 1u64;
            b.iter(|| {
                store.begin(t).unwrap();
                store.put(t, b"key", b"value-bytes").unwrap();
                store.commit(t).unwrap();
                t += 1;
            });
        });
    }
    g.finish();
}

fn bench_txn_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv_commit_writes_per_txn");
    for writes in [1usize, 10, 100] {
        g.bench_with_input(
            BenchmarkId::from_parameter(writes),
            &writes,
            |b, &writes| {
                let (store, _, _) = open(true);
                let mut t = 1u64;
                b.iter(|| {
                    store.begin(t).unwrap();
                    for i in 0..writes {
                        store.put(t, format!("k{i}").as_bytes(), b"v").unwrap();
                    }
                    store.commit(t).unwrap();
                    t += 1;
                });
            },
        );
    }
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_by_log_length");
    g.sample_size(10);
    for txns in [100u64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(txns), &txns, |b, &txns| {
            let (store, wal, ckpt) = open(true);
            for t in 1..=txns {
                store.begin(t).unwrap();
                store.put(t, &t.to_le_bytes(), b"payload").unwrap();
                store.commit(t).unwrap();
            }
            b.iter(|| {
                let (s, report) = KvStore::open(
                    Arc::new(wal.clone()),
                    Arc::new(ckpt.clone()),
                    KvOptions::default(),
                )
                .unwrap();
                assert_eq!(report.committed_txns as u64, txns);
                s
            });
        });
    }
    g.finish();
}

fn bench_recovery_after_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_after_checkpoint");
    g.sample_size(10);
    g.bench_function("10k_txns_checkpointed", |b| {
        let (store, wal, ckpt) = open(true);
        for t in 1..=10_000u64 {
            store.begin(t).unwrap();
            store.put(t, &t.to_le_bytes(), b"payload").unwrap();
            store.commit(t).unwrap();
        }
        store.checkpoint().unwrap();
        b.iter(|| {
            let (s, report) = KvStore::open(
                Arc::new(wal.clone()),
                Arc::new(ckpt.clone()),
                KvOptions::default(),
            )
            .unwrap();
            assert_eq!(report.replayed, 0);
            s
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_commit_cost,
    bench_txn_size,
    bench_recovery,
    bench_recovery_after_checkpoint
);
criterion_main!(benches);
