//! E10 — the cost of persistent registration with operation tags (§4.3):
//! tagged vs. untagged queue operations, and stable vs. unstable
//! registrations.

use criterion::{criterion_group, criterion_main, Criterion};
use rrq_bench::repo_with;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};

fn bench_tagged_vs_untagged_enqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("enqueue_tagging");
    g.bench_function("untagged", |b| {
        let repo = repo_with("bench-tag-none", &["q"]);
        let (h, _) = repo.qm().register("q", "c", false).unwrap();
        b.iter(|| {
            repo.autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"payload", EnqueueOptions::default())
            })
            .unwrap()
        });
    });
    g.bench_function("tagged_stable", |b| {
        let repo = repo_with("bench-tag-stable", &["q"]);
        let (h, _) = repo.qm().register("q", "c", true).unwrap();
        let mut serial = 0u64;
        b.iter(|| {
            serial += 1;
            repo.autocommit(|t| {
                repo.qm().enqueue(
                    t.id().raw(),
                    &h,
                    b"payload",
                    EnqueueOptions {
                        tag: Some(serial.to_le_bytes().to_vec()),
                        ..Default::default()
                    },
                )
            })
            .unwrap()
        });
    });
    g.finish();
}

fn bench_tagged_receive_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dequeue_tagging");
    for (name, tag) in [("untagged", false), ("tagged_with_ckpt", true)] {
        g.bench_function(name, |b| {
            let repo = repo_with(&format!("bench-deq-{name}"), &["q"]);
            let (h, _) = repo.qm().register("q", "c", true).unwrap();
            let mut serial = 0u64;
            b.iter(|| {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, b"reply", EnqueueOptions::default())
                })
                .unwrap();
                serial += 1;
                let opts = if tag {
                    DequeueOptions {
                        tag: Some(format!("rid={serial};ckpt=state").into_bytes()),
                        ..Default::default()
                    }
                } else {
                    DequeueOptions::default()
                };
                repo.autocommit(|t| repo.qm().dequeue(t.id().raw(), &h, opts))
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tagged_vs_untagged_enqueue,
    bench_tagged_receive_path
);
criterion_main!(benches);
