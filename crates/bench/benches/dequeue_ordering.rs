//! E9 — §10's ordering trade-off: skip-locked dequeue vs. strict FIFO under
//! concurrent dequeuers ("the performance degradation that strict ordering
//! would imply").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrq_qm::meta::{OrderingMode, QueueMeta};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::Repository;
use std::sync::Arc;

const ELEMENTS: usize = 200;

fn drain_with_threads(repo: &Arc<Repository>, queue: &str, threads: usize) {
    let mut handles = Vec::new();
    for i in 0..threads {
        let repo = Arc::clone(repo);
        let queue = queue.to_string();
        handles.push(std::thread::spawn(move || {
            let (h, _) = repo.qm().register(&queue, &format!("d{i}"), false).unwrap();
            loop {
                let r = repo.autocommit(|t| {
                    repo.qm()
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())
                });
                if r.is_err() {
                    return; // empty
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_ordering_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("drain_200_elements");
    g.sample_size(10);
    for mode in [OrderingMode::SkipLocked, OrderingMode::StrictFifo] {
        for threads in [1usize, 4, 8] {
            let name = format!(
                "{}_{threads}thr",
                match mode {
                    OrderingMode::SkipLocked => "skip_locked",
                    OrderingMode::StrictFifo => "strict_fifo",
                }
            );
            g.bench_with_input(
                BenchmarkId::from_parameter(&name),
                &threads,
                |b, &threads| {
                    b.iter_batched(
                        || {
                            let repo =
                                Arc::new(Repository::create(format!("bench-ord-{name}")).unwrap());
                            let mut meta = QueueMeta::with_defaults("q");
                            meta.mode = mode;
                            repo.qm().create_queue(meta).unwrap();
                            let (h, _) = repo.qm().register("q", "filler", false).unwrap();
                            for i in 0..ELEMENTS {
                                repo.autocommit(|t| {
                                    repo.qm().enqueue(
                                        t.id().raw(),
                                        &h,
                                        &i.to_le_bytes(),
                                        EnqueueOptions::default(),
                                    )
                                })
                                .unwrap();
                            }
                            repo
                        },
                        |repo| drain_with_threads(&repo, "q", threads),
                        criterion::BatchSize::PerIteration,
                    );
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_ordering_modes);
criterion_main!(benches);
