//! E2 — microbenchmarks of every §4.2 data-manipulation operation (Fig 3),
//! swept over element size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrq_bench::repo_with;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};

fn bench_enqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("enqueue");
    for size in [64usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let repo = repo_with("bench-enq", &["q"]);
            let (h, _) = repo.qm().register("q", "bench", false).unwrap();
            let payload = vec![0xABu8; size];
            b.iter(|| {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, &payload, EnqueueOptions::default())
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_enqueue_dequeue_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("enqueue_dequeue_pair");
    for size in [64usize, 1024, 16 * 1024] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let repo = repo_with("bench-pair", &["q"]);
            let (h, _) = repo.qm().register("q", "bench", false).unwrap();
            let payload = vec![0xCDu8; size];
            b.iter(|| {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, &payload, EnqueueOptions::default())
                })
                .unwrap();
                repo.autocommit(|t| {
                    repo.qm()
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    c.bench_function("read_live_element", |b| {
        let repo = repo_with("bench-read", &["q"]);
        let (h, _) = repo.qm().register("q", "bench", false).unwrap();
        let eid = repo
            .autocommit(|t| {
                repo.qm()
                    .enqueue(t.id().raw(), &h, b"readable", EnqueueOptions::default())
            })
            .unwrap();
        b.iter(|| repo.qm().read(eid).unwrap());
    });
}

fn bench_kill(c: &mut Criterion) {
    c.bench_function("kill_element", |b| {
        let repo = repo_with("bench-kill", &["q"]);
        let (h, _) = repo.qm().register("q", "bench", false).unwrap();
        b.iter_batched(
            || {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, b"victim", EnqueueOptions::default())
                })
                .unwrap()
            },
            |eid| repo.qm().kill_element(eid).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_register(c: &mut Criterion) {
    c.bench_function("register_existing", |b| {
        let repo = repo_with("bench-reg", &["q"]);
        repo.qm().register("q", "client", true).unwrap();
        // Re-registration (the recovery path) is the hot case.
        b.iter(|| repo.qm().register("q", "client", true).unwrap());
    });
}

fn bench_dequeue_from_deep_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("dequeue_at_depth");
    g.sample_size(20);
    for depth in [10usize, 1_000, 50_000] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let repo = repo_with(&format!("bench-depth-{depth}"), &["q"]);
            let (h, _) = repo.qm().register("q", "bench", false).unwrap();
            for _ in 0..depth {
                repo.autocommit(|t| {
                    repo.qm()
                        .enqueue(t.id().raw(), &h, b"x", EnqueueOptions::default())
                })
                .unwrap();
            }
            // Dequeue + re-enqueue keeps the depth constant per iteration.
            b.iter(|| {
                repo.autocommit(|t| {
                    let e = repo
                        .qm()
                        .dequeue(t.id().raw(), &h, DequeueOptions::default())?;
                    repo.qm()
                        .enqueue(t.id().raw(), &h, &e.payload, EnqueueOptions::default())
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_enqueue,
    bench_enqueue_dequeue_pair,
    bench_read,
    bench_kill,
    bench_register,
    bench_dequeue_from_deep_queue
);
criterion_main!(benches);
