//! E4 — end-to-end request→reply latency of the Fig 4/5 system model,
//! local and across the simulated network.

use criterion::{criterion_group, criterion_main, Criterion};
use rrq_core::api::LocalQm;
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::remote::{QmRpcServer, RemoteQm};
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_net::NetworkBus;
use rrq_qm::repository::Repository;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn echo() -> rrq_core::server::Handler {
    Arc::new(|_ctx, req| Ok(rrq_core::server::HandlerOutcome::Reply(req.body.clone())))
}

fn bench_local_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("request_reply_roundtrip");
    g.sample_size(30);
    g.bench_function("local_clerk", |b| {
        let repo = Arc::new(Repository::create("bench-e2e-local").unwrap());
        repo.create_queue_defaults("req").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo()).unwrap();

        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let mut cfg = ClerkConfig::new("c", "req");
        cfg.reply_queue = "reply.c".into();
        cfg.receive_block = Duration::from_secs(10);
        let clerk = Clerk::new(api, cfg);
        clerk.connect().unwrap();

        let mut serial = 0u64;
        b.iter(|| {
            serial += 1;
            clerk
                .transceive("echo", b"ping".to_vec(), Rid::new("c", serial), b"")
                .unwrap()
        });

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    });

    g.bench_function("remote_clerk_over_rpc", |b| {
        let bus = NetworkBus::new(5);
        let repo = Arc::new(Repository::create("bench-e2e-remote").unwrap());
        repo.create_queue_defaults("req").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        let _guard = QmRpcServer::spawn(&bus, "qm", Arc::clone(&repo));
        let (_servers, handles, stop) = spawn_pool(&repo, "req", 1, echo()).unwrap();

        let remote = Arc::new(RemoteQm::new(&bus, "bench-client", "qm"));
        let mut cfg = ClerkConfig::new("c", "req");
        cfg.reply_queue = "reply.c".into();
        cfg.receive_block = Duration::from_secs(10);
        let clerk = Clerk::new(remote, cfg);
        clerk.connect().unwrap();

        let mut serial = 0u64;
        b.iter(|| {
            serial += 1;
            clerk
                .transceive("echo", b"ping".to_vec(), Rid::new("c", serial), b"")
                .unwrap()
        });

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    });
    g.finish();
}

criterion_group!(benches, bench_local_roundtrip);
criterion_main!(benches);
