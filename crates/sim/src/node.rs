//! Whole-node crash simulation for the server side.
//!
//! A node crash kills every server thread, loses all unsynced storage
//! (volatile queue contents included), and recovery reopens the repository
//! from checkpoint + log. Requests that were mid-transaction reappear in
//! their queues; committed work survives — §5's server-failure argument,
//! executable.

use rrq_core::error::CoreResult;
use rrq_core::planned::{AccessFn, PlannedConfig, PlannedPool};
use rrq_core::server::{Handler, Server, ServerConfig};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_storage::disk::TornWriteMode;
use rrq_storage::recovery::RecoveryReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Builds the node's server set against a freshly recovered repository.
pub type ServerFactory =
    Arc<dyn Fn(&Arc<Repository>) -> CoreResult<Vec<Arc<Server>>> + Send + Sync>;

/// Planned-execution pool the node runs instead of (or alongside) its
/// dequeue-loop servers. Requires `RepoOptions { exec_mode: Planned }`.
#[derive(Clone)]
pub struct PlannedSpec {
    /// Request queue the pool drains.
    pub queue: String,
    /// Execute-phase workers (1 = deterministic inline execution).
    pub workers: usize,
    /// Largest epoch batch.
    pub batch_max: usize,
    /// Fresh handler per boot (mirrors [`ServerNodeSim::new`]'s factory).
    pub handler_factory: Arc<dyn Fn() -> Handler + Send + Sync>,
    /// The planner's access-set oracle.
    pub access: AccessFn,
}

/// A crash-restartable server node.
pub struct ServerNodeSim {
    disks: RepoDisks,
    opts: RepoOptions,
    name: String,
    server_factory: ServerFactory,
    planned: Option<PlannedSpec>,
    repo: Option<Arc<Repository>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    crashes: u64,
    /// Boots so far — planned pool names are per-incarnation unique, like
    /// server names, so the conformance checker never sees a name reused by
    /// a thread that died mid-request.
    boots: u64,
    /// Queues to create on first boot.
    initial_queues: Vec<String>,
}

impl ServerNodeSim {
    /// Define a node serving `queue` with `n_servers` threads of one
    /// handler; `queues` are created on first boot.
    pub fn new(
        name: impl Into<String>,
        queue: impl Into<String>,
        n_servers: usize,
        queues: Vec<String>,
        handler_factory: Arc<dyn Fn() -> Handler + Send + Sync>,
    ) -> Self {
        let name = name.into();
        let queue = queue.into();
        let node_name = name.clone();
        let factory: ServerFactory = Arc::new(move |repo| {
            let mut servers = Vec::with_capacity(n_servers);
            for i in 0..n_servers {
                let cfg = ServerConfig::new(format!("{node_name}-s{i}"), queue.clone());
                servers.push(Server::new(Arc::clone(repo), cfg, handler_factory())?);
            }
            Ok(servers)
        });
        Self::with_factory(name, queues, factory)
    }

    /// Define a node whose server set is built by `server_factory` on every
    /// boot — pipelines, reapers, mixed pools.
    pub fn with_factory(
        name: impl Into<String>,
        queues: Vec<String>,
        server_factory: ServerFactory,
    ) -> Self {
        ServerNodeSim {
            disks: RepoDisks::new(),
            opts: RepoOptions::default(),
            name: name.into(),
            server_factory,
            planned: None,
            repo: None,
            stop: Arc::new(AtomicBool::new(false)),
            threads: Vec::new(),
            crashes: 0,
            boots: 0,
            initial_queues: queues,
        }
    }

    /// Run a planned-execution pool on every boot (requires
    /// `RepoOptions { exec_mode: ExecMode::Planned }` via
    /// [`ServerNodeSim::set_repo_options`]).
    pub fn set_planned(&mut self, spec: PlannedSpec) {
        self.planned = Some(spec);
    }

    /// Repository tuning used on every boot (partitioned WAL in particular).
    /// Call before the first [`ServerNodeSim::start`]; the options persist
    /// across crashes and restarts.
    pub fn set_repo_options(&mut self, opts: RepoOptions) {
        self.opts = opts;
    }

    /// Boot (or re-boot after [`ServerNodeSim::crash`]) the node. Returns
    /// the storage recovery report.
    pub fn start(&mut self) -> CoreResult<RecoveryReport> {
        assert!(self.repo.is_none(), "node already running");
        let (repo, report) =
            Repository::open_with(self.name.clone(), self.disks.clone(), self.opts.clone())?;
        let repo = Arc::new(repo);
        for q in &self.initial_queues {
            repo.create_queue_defaults(q)?;
        }
        self.stop = Arc::new(AtomicBool::new(false));
        self.boots += 1;
        for server in (self.server_factory)(&repo)? {
            self.threads.push(server.spawn(Arc::clone(&self.stop)));
        }
        if let Some(spec) = &self.planned {
            let mut pcfg = PlannedConfig::new(
                format!("{}-pl-i{}", self.name, self.boots),
                spec.queue.clone(),
            );
            pcfg.workers = spec.workers;
            pcfg.batch_max = spec.batch_max;
            let pool = PlannedPool::new(
                Arc::clone(&repo),
                pcfg,
                (spec.handler_factory)(),
                Arc::clone(&spec.access),
            )?;
            self.threads.extend(pool.spawn(Arc::clone(&self.stop)));
        }
        self.repo = Some(repo);
        Ok(report)
    }

    /// The running repository (panics when the node is down).
    pub fn repo(&self) -> Arc<Repository> {
        Arc::clone(self.repo.as_ref().expect("node is down"))
    }

    /// Is the node up?
    pub fn is_up(&self) -> bool {
        self.repo.is_some()
    }

    /// Crash the node: threads die, unsynced bytes vanish.
    pub fn crash(&mut self) {
        self.crash_with(None);
    }

    /// Crash the node; with `Some(mode)` the WAL keeps a torn tail that
    /// recovery must reject (see `RepoDisks::crash_with`).
    pub fn crash_with(&mut self, torn: Option<TornWriteMode>) {
        self.crash_torn_logs(torn, 0);
    }

    /// Crash the node with the tear aimed at a subset of WAL partitions:
    /// bit `i` of `mask` tears log `i`, the rest lose only volatile bytes.
    /// `mask == 0` tears every log (see `RepoDisks::crash_torn_logs`).
    pub fn crash_torn_logs(&mut self, torn: Option<TornWriteMode>, mask: u8) {
        self.halt();
        self.disks.crash_torn_logs(torn, mask);
        self.crashes += 1;
    }

    /// Partition-scoped crash: only repository partition `part`'s devices
    /// (its WAL group + checkpoint) lose their volatile bytes — siblings
    /// and the shared coordinator log keep theirs. Server threads still die
    /// (they share the process), so [`ServerNodeSim::start`] reboots the
    /// whole cluster; sibling partitions recover from intact logs while the
    /// crashed one must resolve any prepared cross-partition transactions.
    pub fn crash_partition(&mut self, part: usize, torn: Option<TornWriteMode>) {
        self.halt();
        self.disks.crash_partition(part, torn, 0);
        self.crashes += 1;
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.repo = None;
    }

    /// Graceful stop (no storage loss) — used at test teardown.
    pub fn shutdown(&mut self) {
        self.halt();
    }

    /// Number of crashes injected so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }
}

impl Drop for ServerNodeSim {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_core::api::{LocalQm, QmApi};
    use rrq_core::request::{Reply, Request};
    use rrq_core::rid::Rid;
    use rrq_core::server::HandlerOutcome;
    use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
    use rrq_storage::codec::{Decode, Encode};
    use std::time::Duration;

    #[test]
    fn node_crash_preserves_queued_requests() {
        let factory: Arc<dyn Fn() -> Handler + Send + Sync> = Arc::new(|| {
            Arc::new(|_ctx, req: &Request| {
                Ok(HandlerOutcome::Reply(
                    format!("did {}", req.rid).into_bytes(),
                ))
            })
        });
        let mut node = ServerNodeSim::new(
            "node1",
            "req",
            0, // no servers yet: requests pile up
            vec!["req".into(), "reply.c".into()],
            factory,
        );
        node.start().unwrap();
        {
            let api = LocalQm::new(node.repo());
            api.register("req", "c", false).unwrap();
            for i in 0..5u64 {
                let req = Request::new(Rid::new("c", i + 1), "reply.c", "op", vec![]);
                api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
                    .unwrap();
            }
            assert_eq!(api.depth("req").unwrap(), 5);
        }
        node.crash();
        assert!(!node.is_up());
        node.start().unwrap();
        let api = LocalQm::new(node.repo());
        assert_eq!(api.depth("req").unwrap(), 5, "requests survived the crash");
    }

    #[test]
    fn node_crash_then_restart_serves_requests() {
        let factory: Arc<dyn Fn() -> Handler + Send + Sync> = Arc::new(|| {
            Arc::new(|_ctx, req: &Request| {
                Ok(HandlerOutcome::Reply(
                    format!("did {}", req.rid).into_bytes(),
                ))
            })
        });
        let mut node = ServerNodeSim::new(
            "node2",
            "req",
            2,
            vec!["req".into(), "reply.c".into()],
            factory,
        );
        node.start().unwrap();
        {
            let api = LocalQm::new(node.repo());
            api.register("req", "c", false).unwrap();
            let req = Request::new(Rid::new("c", 1), "reply.c", "op", vec![]);
            api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
                .unwrap();
        }
        // Crash almost immediately; the request either committed (reply in
        // reply queue) or returns to the request queue on recovery.
        node.crash();
        node.start().unwrap();
        let api = LocalQm::new(node.repo());
        api.register("reply.c", "c", false).unwrap();
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.rid, Rid::new("c", 1));
        assert_eq!(node.crash_count(), 1);
    }
}
