//! Correctness oracles for the paper's three guarantees (§3).

use parking_lot::Mutex;
use rrq_core::error::CoreResult;
use rrq_core::request::Reply;
use rrq_core::rid::Rid;
use rrq_core::server::{Handler, HandlerOutcome};
use rrq_qm::repository::Repository;
use std::collections::HashMap;
use std::sync::Arc;

fn effect_key(rid: &Rid) -> Vec<u8> {
    format!("oracle/effect/{}", rid.to_attr()).into_bytes()
}

/// Counts committed request-processing effects per rid, *inside* the request
/// transaction — so an aborted attempt leaves no count, exactly like any
/// other transactional effect. Exactly-once request processing holds iff
/// every processed rid has count 1.
pub struct EffectLedger;

impl EffectLedger {
    /// Wrap `inner` so each execution increments the rid's effect count in
    /// the same transaction.
    pub fn instrument(inner: Handler) -> Handler {
        Arc::new(move |ctx, req| {
            let key = effect_key(&req.rid);
            let txn = ctx.txn.id().raw();
            let count = ctx
                .store()
                .get(Some(txn), &key)
                .ok()
                .flatten()
                .map(|raw| u32::from_le_bytes(raw.try_into().unwrap_or([0; 4])))
                .unwrap_or(0);
            ctx.store()
                .put(txn, &key, &(count + 1).to_le_bytes())
                .map_err(|e| crate::driver::abort_err(e.to_string()))?;
            let out = inner(ctx, req)?;
            // Intermediate outputs of interactive requests legitimately
            // commit several transactions per rid; only count final effects.
            if matches!(out, HandlerOutcome::IntermediateReply { .. }) {
                ctx.store()
                    .put(txn, &key, &count.to_le_bytes())
                    .map_err(|e| crate::driver::abort_err(e.to_string()))?;
            }
            Ok(out)
        })
    }

    /// Committed effect counts per rid, aggregated across partition stores
    /// (a server counts effects on its home partition; one rid served from
    /// several homes still sums to its true multiplicity).
    pub fn counts(repo: &Repository) -> CoreResult<HashMap<Rid, u32>> {
        let mut out = HashMap::new();
        for p in 0..repo.partitions() {
            let rows = repo.store_at(p).scan_prefix(None, b"oracle/effect/")?;
            for (k, v) in rows {
                let rid_str = String::from_utf8_lossy(&k[b"oracle/effect/".len()..]).to_string();
                if let Some(rid) = Rid::from_attr(&rid_str) {
                    *out.entry(rid).or_insert(0) +=
                        u32::from_le_bytes(v.try_into().unwrap_or([0; 4]));
                }
            }
        }
        Ok(out)
    }

    /// Assert exactly-once over `expected` rids: each has count exactly 1 —
    /// and nothing unexpected was processed. Returns the violations.
    pub fn violations(repo: &Repository, expected: &[Rid]) -> CoreResult<Vec<String>> {
        let counts = Self::counts(repo)?;
        let mut bad = Vec::new();
        for rid in expected {
            match counts.get(rid) {
                Some(1) => {}
                Some(n) => bad.push(format!("{rid} processed {n} times")),
                None => bad.push(format!("{rid} never processed")),
            }
        }
        for (rid, n) in &counts {
            if !expected.contains(rid) {
                bad.push(format!("unexpected rid {rid} processed {n} times"));
            }
        }
        Ok(bad)
    }
}

/// Client-side oracle: records every reply handed to the reply processor,
/// checking request/reply matching and measuring reply-processing
/// multiplicity (at-least-once allows > 1; exactly-once requires == 1).
#[derive(Default)]
pub struct ReplyMatcher {
    inner: Mutex<MatcherInner>,
}

#[derive(Default)]
struct MatcherInner {
    processed: HashMap<Rid, u32>,
    mismatches: Vec<String>,
}

impl ReplyMatcher {
    /// New oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one processed reply, with the rid of the request it was
    /// expected to answer.
    pub fn record(&self, expected: &Rid, reply: &Reply) {
        let mut g = self.inner.lock();
        if &reply.rid != expected {
            g.mismatches
                .push(format!("expected {expected}, reply was for {}", reply.rid));
        }
        *g.processed.entry(reply.rid.clone()).or_insert(0) += 1;
    }

    /// Request/reply matching violations (must be empty).
    pub fn mismatches(&self) -> Vec<String> {
        self.inner.lock().mismatches.clone()
    }

    /// At-least-once check over `expected`: rids whose reply was never
    /// processed.
    pub fn missing(&self, expected: &[Rid]) -> Vec<Rid> {
        let g = self.inner.lock();
        expected
            .iter()
            .filter(|r| !g.processed.contains_key(r))
            .cloned()
            .collect()
    }

    /// Rids processed more than once (allowed by at-least-once; must be
    /// empty when the device is testable).
    pub fn duplicated(&self) -> Vec<(Rid, u32)> {
        self.inner
            .lock()
            .processed
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(r, &n)| (r.clone(), n))
            .collect()
    }
}

/// The metrics oracle: conservation laws over the production counters,
/// checked at a quiescent point (every request answered, clerk disconnected,
/// servers idle on empty queues) against the per-script [`rrq_obs::Session`]
/// snapshot. The laws hold across crashes because counter increments sit
/// after the durable commit they describe and node crashes join server
/// threads before failing the disks — an increment is never torn off from
/// its committed effect.
///
/// * **Law A (element conservation).** Every committed enqueue is either
///   still queued, retired by a committed dequeue, or dropped by an abort
///   disposition: `enqueue.committed − dequeue.committed − element.dropped`
///   must equal the `qm.queue.depth` gauge, which must equal the live ready
///   index's element total (both read in one critical section).
/// * **Law B (durability ordering).** A commit record is acknowledged only
///   after its force: `wal.records_synced ≥ wal.commit_records`.
/// * **Law C (group-commit accounting).** A follower wakes only when some
///   force covered its record: `gc.follower_wakeups ≤ wal.records_synced`.
/// * **Law D (reply/effect agreement).** Every committed final reply ran
///   the instrumented handler inside the same transaction:
///   `core.server.replies_committed` equals the effect ledger's total.
pub fn metrics_conservation(
    snap: &rrq_obs::Snapshot,
    repo: &Repository,
    ledger_total: u64,
) -> Vec<String> {
    let mut bad = Vec::new();

    // Law A.
    let enq = snap.counter("qm.enqueue.committed");
    let deq = snap.counter("qm.dequeue.committed");
    let dropped = snap.counter("qm.element.dropped");
    let flow = enq as i128 - deq as i128 - dropped as i128;
    // The depth gauge is session-global but each partition has its own
    // ready index: sum the live totals, read the gauge once.
    let (mut live, mut gauge) = (0usize, 0i64);
    for p in 0..repo.partitions() {
        let (l, g) = repo.qm_at(p).depth_accounting();
        live += l;
        gauge = g;
    }
    if flow != i128::from(gauge) {
        bad.push(format!(
            "metrics law A: enqueue.committed ({enq}) - dequeue.committed ({deq}) \
             - element.dropped ({dropped}) = {flow}, but qm.queue.depth gauge is {gauge}"
        ));
    }
    if i128::from(gauge) != live as i128 {
        bad.push(format!(
            "metrics law A: qm.queue.depth gauge {gauge} disagrees with the \
             ready index's {live} live elements"
        ));
    }

    // Law B.
    let synced = snap.counter("storage.wal.records_synced");
    let commits = snap.counter("storage.wal.commit_records");
    if synced < commits {
        bad.push(format!(
            "metrics law B: wal.records_synced ({synced}) < wal.commit_records ({commits})"
        ));
    }

    // Law C.
    let wakeups = snap.counter("storage.gc.follower_wakeups");
    if wakeups > synced {
        bad.push(format!(
            "metrics law C: gc.follower_wakeups ({wakeups}) > wal.records_synced ({synced})"
        ));
    }

    // Law D.
    let replies = snap.counter("core.server.replies_committed");
    if replies != ledger_total {
        bad.push(format!(
            "metrics law D: core.server.replies_committed ({replies}) != \
             effect-ledger total ({ledger_total})"
        ));
    }

    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_core::request::ReplyStatus;

    #[test]
    fn matcher_detects_mismatch_and_duplicates() {
        let m = ReplyMatcher::new();
        let r1 = Rid::new("c", 1);
        let r2 = Rid::new("c", 2);
        let reply1 = Reply {
            rid: r1.clone(),
            status: ReplyStatus::Ok,
            body: vec![],
        };
        m.record(&r1, &reply1);
        m.record(&r1, &reply1); // duplicate processing
        m.record(&r2, &reply1); // mismatch
        assert_eq!(m.mismatches().len(), 1);
        assert_eq!(m.duplicated(), vec![(r1.clone(), 3)]);
        assert!(m.missing(&[r1, r2.clone()]).contains(&r2));
    }
}
