//! Seeded fault scripts: one reproducible failure schedule combining every
//! fault dimension the harness knows.
//!
//! A [`FaultScript`] is the unit of exploration: a workload length plus a
//! list of [`FaultEvent`]s keyed by request serial. Scripts are generated
//! deterministically from a seed, serialized to a line-oriented text format
//! (`rrq-fault-script v1`) so a failing schedule can be checked in as a
//! regression file, and re-run byte-for-byte identically by the explorer.

use crate::driver::CrashPoint;
use rrq_storage::disk::TornWriteMode;
use rrq_workload::arrivals::SplitMix;
use std::path::Path;

/// Which half of the client↔QM conversation a partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionDirection {
    /// Requests are cut; the QM can still answer (lost request).
    ClientToQm,
    /// Replies are cut; the QM hears and acts but cannot answer (lost ack —
    /// the operation commits server-side while the client sees a failure).
    QmToClient,
    /// Full bidirectional cut.
    Both,
}

impl PartitionDirection {
    const ALL: [PartitionDirection; 3] = [
        PartitionDirection::ClientToQm,
        PartitionDirection::QmToClient,
        PartitionDirection::Both,
    ];

    /// Stable codec/trace name.
    pub fn name(self) -> &'static str {
        match self {
            PartitionDirection::ClientToQm => "c2q",
            PartitionDirection::QmToClient => "q2c",
            PartitionDirection::Both => "both",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }
}

pub(crate) fn point_name(p: CrashPoint) -> &'static str {
    match p {
        CrashPoint::AfterSend => "after-send",
        CrashPoint::AfterReceive => "after-receive",
        CrashPoint::AfterProcess => "after-process",
    }
}

fn point_from_name(name: &str) -> Option<CrashPoint> {
    match name {
        "after-send" => Some(CrashPoint::AfterSend),
        "after-receive" => Some(CrashPoint::AfterReceive),
        "after-process" => Some(CrashPoint::AfterProcess),
        _ => None,
    }
}

/// One injected fault, anchored to the request serial it strikes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The client process dies at `point` while working serial `serial`.
    ClientCrash {
        /// Serial being processed when the crash fires.
        serial: u64,
        /// Fig 1 state at which the process dies.
        point: CrashPoint,
    },
    /// The server node crashes (and is restarted) after the send of
    /// `serial`; `torn` optionally leaves a corrupt WAL tail.
    ServerCrash {
        /// Serial whose send precedes the crash.
        serial: u64,
        /// Torn-write mode for the WAL devices, if any.
        torn: Option<TornWriteMode>,
        /// Which WAL partitions the tear strikes: bit *i* = log *i*, `0` =
        /// every log. Each log is its own device, so a power cut can tear
        /// some logs' in-flight frames while others lose their volatile
        /// bytes cleanly. Only meaningful when `torn` is set.
        torn_logs: u8,
    },
    /// The client↔QM link is cut before the send of `serial` and heals
    /// after `ops` failed client operations.
    Partition {
        /// Serial before whose send the cut happens.
        serial: u64,
        /// Which direction(s) to cut.
        direction: PartitionDirection,
        /// Failed client operations to ride out before healing.
        ops: u32,
    },
    /// Deliveries on the client↔QM links are delayed by `millis` for the
    /// duration of serial `serial`.
    Delay {
        /// Serial the delay covers.
        serial: u64,
        /// Delay per delivery, in milliseconds (kept well under the RPC
        /// timeout so a delay alone can never fail an operation).
        millis: u64,
    },
    /// One *repository partition*'s durable devices fail after the send of
    /// `serial`: its WAL group and checkpoint crash (optionally torn) while
    /// every sibling partition — and the shared 2PC coordinator log — keeps
    /// its bytes. The node restarts and recovery must resolve any
    /// cross-partition transaction the dead partition had prepared.
    RepoCrash {
        /// Serial whose send precedes the crash.
        serial: u64,
        /// Repository partition to crash (`part % repo_partitions` at run
        /// time, so scripts stay valid at any partition count).
        part: u8,
        /// Torn-write mode for the partition's WAL devices, if any.
        torn: Option<TornWriteMode>,
    },
    /// The clerk↔QM link of *one repository partition's endpoint only* is
    /// cut before the send of `serial` and heals after `ops` failed client
    /// operations — the shared-nothing failure-isolation case: queues owned
    /// by every other partition stay reachable throughout.
    PartPartition {
        /// Serial before whose send the cut happens.
        serial: u64,
        /// Repository partition whose endpoint is cut (mod-clamped at run
        /// time).
        part: u8,
        /// Which direction(s) to cut.
        direction: PartitionDirection,
        /// Failed client operations to ride out before healing.
        ops: u32,
    },
}

impl FaultEvent {
    /// The serial this event is anchored to.
    pub fn serial(&self) -> u64 {
        match *self {
            FaultEvent::ClientCrash { serial, .. }
            | FaultEvent::ServerCrash { serial, .. }
            | FaultEvent::Partition { serial, .. }
            | FaultEvent::Delay { serial, .. }
            | FaultEvent::RepoCrash { serial, .. }
            | FaultEvent::PartPartition { serial, .. } => serial,
        }
    }

    fn encode_line(&self) -> String {
        match *self {
            FaultEvent::ClientCrash { serial, point } => {
                format!("client-crash {serial} {}", point_name(point))
            }
            FaultEvent::ServerCrash {
                serial,
                torn,
                torn_logs,
            } => match torn {
                Some(mode) if torn_logs != 0 => {
                    let logs: Vec<String> = (0..u8::BITS)
                        .filter(|i| torn_logs & (1 << i) != 0)
                        .map(|i| i.to_string())
                        .collect();
                    format!("server-crash {serial} {}@{}", mode.name(), logs.join(","))
                }
                Some(mode) => format!("server-crash {serial} {}", mode.name()),
                None => format!("server-crash {serial}"),
            },
            FaultEvent::Partition {
                serial,
                direction,
                ops,
            } => format!("partition {serial} {} {ops}", direction.name()),
            FaultEvent::Delay { serial, millis } => format!("delay {serial} {millis}"),
            FaultEvent::RepoCrash { serial, part, torn } => match torn {
                Some(mode) => format!("repo-crash {serial} {part} {}", mode.name()),
                None => format!("repo-crash {serial} {part}"),
            },
            FaultEvent::PartPartition {
                serial,
                part,
                direction,
                ops,
            } => format!("part-partition {serial} {part} {} {ops}", direction.name()),
        }
    }
}

/// A complete, reproducible failure schedule for one explorer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScript {
    /// The seed this script was generated from (0 for hand-written ones).
    pub seed: u64,
    /// Workload length: transfer serials 1..=n_requests.
    pub n_requests: u64,
    /// The injected faults, in generation order.
    pub events: Vec<FaultEvent>,
}

const HEADER: &str = "rrq-fault-script v1";

/// Delay events stay well under the explorer's RPC timeout so a delay alone
/// can never fail an operation (which would make outcomes timing-dependent).
pub const MAX_DELAY_MILLIS: u64 = 40;

impl FaultScript {
    /// A script with no faults (the baseline happy path).
    pub fn quiet(n_requests: u64) -> Self {
        FaultScript {
            seed: 0,
            n_requests,
            events: Vec::new(),
        }
    }

    /// Generate the script for `seed`: 4–8 requests, 1–4 fault events drawn
    /// across all four dimensions. Pure function of the seed.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SplitMix::new(seed);
        let n_requests = 4 + rng.next_u64() % 5;
        let n_events = 1 + rng.next_u64() % 4;
        let mut events = Vec::with_capacity(n_events as usize);
        for _ in 0..n_events {
            let serial = 1 + rng.next_u64() % n_requests;
            // Crashes are the paper's bread and butter: weight them higher
            // than network faults.
            events.push(match rng.next_u64() % 14 {
                0..=2 => FaultEvent::ClientCrash {
                    serial,
                    point: match rng.next_u64() % 3 {
                        0 => CrashPoint::AfterSend,
                        1 => CrashPoint::AfterReceive,
                        _ => CrashPoint::AfterProcess,
                    },
                },
                3..=5 => {
                    let torn = match rng.next_u64() % 4 {
                        0 => None,
                        1 => Some(TornWriteMode::Midway),
                        2 => Some(TornWriteMode::FullLengthCorrupt),
                        _ => Some(TornWriteMode::HeaderOnly),
                    };
                    // A third of torn crashes strike a random subset of log
                    // partitions; the rest (and untorn crashes) hit them all.
                    let torn_logs = if torn.is_some() && rng.next_u64().is_multiple_of(3) {
                        1 + (rng.next_u64() % 15) as u8
                    } else {
                        0
                    };
                    FaultEvent::ServerCrash {
                        serial,
                        torn,
                        torn_logs,
                    }
                }
                6..=8 => FaultEvent::Partition {
                    serial,
                    direction: PartitionDirection::ALL[(rng.next_u64() % 3) as usize],
                    ops: 1 + (rng.next_u64() % 3) as u32,
                },
                9 => FaultEvent::Delay {
                    serial,
                    millis: 5 + rng.next_u64() % (MAX_DELAY_MILLIS - 4),
                },
                // Partition-scoped faults: the part index is drawn over the
                // full device range and mod-clamped by the run's actual
                // partition count (at 1 partition they degrade to the
                // whole-node equivalents).
                10..=11 => FaultEvent::RepoCrash {
                    serial,
                    part: (rng.next_u64() % 8) as u8,
                    torn: match rng.next_u64() % 3 {
                        0 => Some(TornWriteMode::Midway),
                        _ => None,
                    },
                },
                _ => FaultEvent::PartPartition {
                    serial,
                    part: (rng.next_u64() % 8) as u8,
                    direction: PartitionDirection::ALL[(rng.next_u64() % 3) as usize],
                    ops: 1 + (rng.next_u64() % 3) as u32,
                },
            });
        }
        FaultScript {
            seed,
            n_requests,
            events,
        }
    }

    /// Does the script inject any network fault (partitions or delays)?
    pub fn needs_bus(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::Partition { .. }
                    | FaultEvent::Delay { .. }
                    | FaultEvent::PartPartition { .. }
            )
        })
    }

    /// Serialize to the `rrq-fault-script v1` text format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("requests {}\n", self.n_requests));
        for e in &self.events {
            out.push_str(&e.encode_line());
            out.push('\n');
        }
        out
    }

    /// Parse the text format back. Errors name the offending line.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(format!("missing header line {HEADER:?}"));
        }
        let mut seed = None;
        let mut n_requests = None;
        let mut events = Vec::new();
        let bad = |line: &str, why: &str| format!("bad line {line:?}: {why}");
        for line in lines {
            let mut w = line.split_whitespace();
            let kind = w.next().unwrap_or("");
            let mut num = |name: &str| -> Result<u64, String> {
                w.next()
                    .ok_or_else(|| bad(line, &format!("missing {name}")))?
                    .parse::<u64>()
                    .map_err(|_| bad(line, &format!("{name} is not a number")))
            };
            match kind {
                "seed" => seed = Some(num("seed")?),
                "requests" => n_requests = Some(num("count")?),
                "client-crash" => {
                    let serial = num("serial")?;
                    let point = w
                        .next()
                        .and_then(point_from_name)
                        .ok_or_else(|| bad(line, "unknown crash point"))?;
                    events.push(FaultEvent::ClientCrash { serial, point });
                }
                "server-crash" => {
                    let serial = num("serial")?;
                    let (torn, torn_logs) = match w.next() {
                        None => (None, 0),
                        Some(token) => {
                            // `mode@0,2` tears only the listed logs; a bare
                            // mode (legacy scripts included) tears them all.
                            let (name, logs) = match token.split_once('@') {
                                Some((name, list)) => {
                                    let mut mask = 0u8;
                                    for part in list.split(',') {
                                        let i = part
                                            .parse::<u32>()
                                            .ok()
                                            .filter(|i| *i < u8::BITS)
                                            .ok_or_else(|| bad(line, "bad torn log index"))?;
                                        mask |= 1 << i;
                                    }
                                    (name, mask)
                                }
                                None => (token, 0),
                            };
                            let mode = TornWriteMode::from_name(name)
                                .ok_or_else(|| bad(line, "unknown torn mode"))?;
                            (Some(mode), logs)
                        }
                    };
                    events.push(FaultEvent::ServerCrash {
                        serial,
                        torn,
                        torn_logs,
                    });
                }
                "partition" => {
                    let serial = num("serial")?;
                    let direction = w
                        .next()
                        .and_then(PartitionDirection::from_name)
                        .ok_or_else(|| bad(line, "unknown direction"))?;
                    let ops = w
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or_else(|| bad(line, "missing/bad ops count"))?;
                    events.push(FaultEvent::Partition {
                        serial,
                        direction,
                        ops,
                    });
                }
                "delay" => {
                    let serial = num("serial")?;
                    let millis = num("millis")?.min(MAX_DELAY_MILLIS);
                    events.push(FaultEvent::Delay { serial, millis });
                }
                "repo-crash" => {
                    let serial = num("serial")?;
                    let part = num("part")? as u8;
                    let torn = match w.next() {
                        None => None,
                        Some(name) => Some(
                            TornWriteMode::from_name(name)
                                .ok_or_else(|| bad(line, "unknown torn mode"))?,
                        ),
                    };
                    events.push(FaultEvent::RepoCrash { serial, part, torn });
                }
                "part-partition" => {
                    let serial = num("serial")?;
                    let part = num("part")? as u8;
                    let direction = w
                        .next()
                        .and_then(PartitionDirection::from_name)
                        .ok_or_else(|| bad(line, "unknown direction"))?;
                    let ops = w
                        .next()
                        .and_then(|s| s.parse::<u32>().ok())
                        .ok_or_else(|| bad(line, "missing/bad ops count"))?;
                    events.push(FaultEvent::PartPartition {
                        serial,
                        part,
                        direction,
                        ops,
                    });
                }
                other => return Err(bad(line, &format!("unknown event kind {other:?}"))),
            }
        }
        Ok(FaultScript {
            seed: seed.ok_or("missing `seed` line")?,
            n_requests: n_requests.ok_or("missing `requests` line")?,
            events,
        })
    }

    /// Write the encoded script to `path` (creating parent directories).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.encode())
    }

    /// Read and decode a script file.
    pub fn read_from(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Self::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_pure_in_the_seed() {
        for seed in 0..50 {
            assert_eq!(FaultScript::generate(seed), FaultScript::generate(seed));
        }
        // And not constant across seeds.
        assert_ne!(FaultScript::generate(1), FaultScript::generate(2));
    }

    #[test]
    fn generated_events_are_in_bounds() {
        for seed in 0..200 {
            let s = FaultScript::generate(seed);
            assert!((4..=8).contains(&s.n_requests), "seed {seed}");
            assert!((1..=4).contains(&s.events.len()), "seed {seed}");
            for e in &s.events {
                assert!(
                    (1..=s.n_requests).contains(&e.serial()),
                    "seed {seed}: {e:?}"
                );
                if let FaultEvent::Delay { millis, .. } = e {
                    assert!(*millis <= MAX_DELAY_MILLIS, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn codec_round_trips_generated_scripts() {
        for seed in 0..100 {
            let s = FaultScript::generate(seed);
            let decoded = FaultScript::decode(&s.encode()).unwrap();
            assert_eq!(s, decoded, "seed {seed}");
        }
    }

    #[test]
    fn codec_round_trips_every_event_shape() {
        let s = FaultScript {
            seed: 9,
            n_requests: 6,
            events: vec![
                FaultEvent::ClientCrash {
                    serial: 1,
                    point: CrashPoint::AfterReceive,
                },
                FaultEvent::ServerCrash {
                    serial: 2,
                    torn: None,
                    torn_logs: 0,
                },
                FaultEvent::ServerCrash {
                    serial: 3,
                    torn: Some(TornWriteMode::HeaderOnly),
                    torn_logs: 0,
                },
                FaultEvent::ServerCrash {
                    serial: 3,
                    torn: Some(TornWriteMode::Midway),
                    torn_logs: 0b0101,
                },
                FaultEvent::Partition {
                    serial: 4,
                    direction: PartitionDirection::QmToClient,
                    ops: 2,
                },
                FaultEvent::Delay {
                    serial: 5,
                    millis: 12,
                },
                FaultEvent::RepoCrash {
                    serial: 5,
                    part: 2,
                    torn: None,
                },
                FaultEvent::RepoCrash {
                    serial: 6,
                    part: 7,
                    torn: Some(TornWriteMode::Midway),
                },
                FaultEvent::PartPartition {
                    serial: 6,
                    part: 3,
                    direction: PartitionDirection::Both,
                    ops: 1,
                },
            ],
        };
        assert_eq!(FaultScript::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(FaultScript::decode("not a script").is_err());
        assert!(FaultScript::decode("rrq-fault-script v1\nseed 1\n").is_err());
        assert!(FaultScript::decode(
            "rrq-fault-script v1\nseed 1\nrequests 3\nclient-crash 1 nowhere"
        )
        .is_err());
        assert!(FaultScript::decode("rrq-fault-script v1\nseed 1\nrequests 3\nwarp 1").is_err());
    }
}
