//! The client crash driver: the Fig 2 program with crashes injectable at
//! every state of the Fig 1 state-transition diagram.
//!
//! A "crash" abandons the clerk instance (its in-memory state is lost — the
//! process died) and starts a new incarnation, which must resynchronize via
//! `Connect` exactly as Fig 2 lines 2–11 prescribe. The physical device (the
//! [`rrq_core::client::ReplyProcessor`]) survives, like a real printer
//! would.

use rrq_core::clerk::Clerk;
use rrq_core::client::ReplyProcessor;
use rrq_core::error::{CoreError, CoreResult};
use rrq_core::rid::Rid;
use rrq_core::server::HandlerError;
use std::collections::HashSet;

/// Make a handler abort-error (helper shared with the oracles).
pub fn abort_err(msg: String) -> HandlerError {
    HandlerError::Abort(msg)
}

/// Where in the request lifecycle the client process dies (Fig 1 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Crash after `Send` returns, before `Receive` — the reply (when it
    /// arrives) waits in the reply queue.
    AfterSend,
    /// Crash after `Receive` returns, before the reply is processed — the
    /// reply must be re-obtained (Rereceive) and processed again.
    AfterReceive,
    /// Crash after the reply is processed, before the next `Send` — resync
    /// must detect the reply was already processed and *not* repeat it.
    AfterProcess,
}

/// What a full driven run observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Requests whose replies were processed at least once.
    pub completed: u64,
    /// Client process incarnations (1 = no crashes).
    pub incarnations: u64,
    /// Resyncs that found an outstanding request and received its reply.
    pub resync_received: u64,
    /// Resyncs that re-processed a possibly-unprocessed reply (Rereceive).
    pub resync_reprocessed: u64,
    /// Resyncs where the device proved the reply was already processed.
    pub resync_already_processed: u64,
}

/// Drives one client identity through `n_requests` sequential requests,
/// crashing according to the schedule.
pub struct ClientCrashDriver<F: Fn() -> Clerk> {
    make_clerk: F,
    client_id: String,
    op: String,
}

impl<F: Fn() -> Clerk> ClientCrashDriver<F> {
    /// `make_clerk` builds the clerk of a fresh process incarnation (same
    /// client id each time).
    pub fn new(make_clerk: F, op: impl Into<String>) -> Self {
        let clerk = make_clerk();
        let client_id = clerk.config().client_id.clone();
        drop(clerk);
        ClientCrashDriver {
            make_clerk,
            client_id,
            op: op.into(),
        }
    }

    /// Run to completion. `schedule(serial)` names the crash to inject while
    /// processing that serial — injected at most once per (serial, point).
    /// `body(serial)` builds each request body.
    pub fn run(
        &self,
        n_requests: u64,
        schedule: impl Fn(u64) -> Option<CrashPoint>,
        body: impl Fn(u64) -> Vec<u8>,
        processor: &mut dyn ReplyProcessor,
    ) -> CoreResult<DriverReport> {
        let mut report = DriverReport::default();
        let mut injected: HashSet<(u64, CrashPoint)> = HashSet::new();
        // Hard bound: every injected crash adds one incarnation; anything
        // beyond schedule size + n_requests indicates livelock.
        let max_incarnations = 3 * n_requests + 10;

        'incarnation: loop {
            report.incarnations += 1;
            if report.incarnations > max_incarnations {
                return Err(CoreError::Protocol(
                    "crash driver livelocked: too many incarnations".into(),
                ));
            }
            let clerk = (self.make_clerk)();
            let info = clerk.connect()?;

            // --- Fig 2 resynchronization ---
            let mut serial_done = 0u64; // highest serial fully processed
            match (&info.s_rid, &info.r_rid) {
                (None, _) => {}
                (Some(s), r) if r.as_ref() != Some(s) => {
                    // Request outstanding, reply never received.
                    let ckpt = processor.checkpoint();
                    let reply = clerk.receive(&ckpt)?;
                    if reply.rid != *s {
                        return Err(CoreError::Protocol(format!(
                            "resync mismatch: {s} vs {}",
                            reply.rid
                        )));
                    }
                    processor.process(s, &reply);
                    report.resync_received += 1;
                    report.completed += 1;
                    serial_done = s.serial;
                }
                (Some(s), _) => {
                    if processor.already_processed(s, info.ckpt.as_deref()) {
                        report.resync_already_processed += 1;
                    } else {
                        let reply = clerk.rereceive()?;
                        processor.process(s, &reply);
                        report.resync_reprocessed += 1;
                        report.completed += 1;
                    }
                    serial_done = s.serial;
                }
            }

            // --- main loop ---
            let mut serial = serial_done + 1;
            while serial <= n_requests {
                let crash = schedule(serial).filter(|p| injected.insert((serial, *p)));
                let rid = Rid::new(self.client_id.clone(), serial);
                clerk.send(&self.op, body(serial), rid.clone())?;
                if crash == Some(CrashPoint::AfterSend) {
                    continue 'incarnation; // process dies
                }
                let ckpt = processor.checkpoint();
                let reply = clerk.receive(&ckpt)?;
                if reply.rid != rid {
                    return Err(CoreError::Protocol(format!(
                        "mismatch: sent {rid}, got reply for {}",
                        reply.rid
                    )));
                }
                if crash == Some(CrashPoint::AfterReceive) {
                    continue 'incarnation; // reply received, never processed
                }
                processor.process(&rid, &reply);
                report.completed += 1;
                if crash == Some(CrashPoint::AfterProcess) {
                    continue 'incarnation;
                }
                serial += 1;
            }
            clerk.disconnect()?;
            return Ok(report);
        }
    }
}
