//! Greedy shrinker for failing fault scripts.
//!
//! Given a script whose oracles fire, repeatedly try smaller variants —
//! drop an event, weaken an event (torn crash → clean crash, bidirectional
//! cut → one direction, long outage → one failed op), trim the workload to
//! the last faulted serial — keeping each variant that still fails, until a
//! fixpoint. Every candidate is a full deterministic re-run, so the result
//! is a minimal *reproducible* failure, ready to check in as a regression
//! file.

use crate::explorer::{run_script, ExplorerConfig};
use crate::script::{FaultEvent, FaultScript, PartitionDirection};

/// What the shrinker did.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The smallest still-failing script found.
    pub script: FaultScript,
    /// Candidate runs executed (each one a full script execution).
    pub attempts: u64,
    /// Did the input script fail at all? When `false`, `script` is just the
    /// input unchanged.
    pub input_failed: bool,
}

/// Strictly-weaker variants of one event, strongest first.
fn weakenings(ev: &FaultEvent) -> Vec<FaultEvent> {
    let mut out = Vec::new();
    match *ev {
        FaultEvent::ServerCrash {
            serial,
            torn: torn @ Some(_),
            torn_logs,
        } => {
            // First weaken the per-log targeting (tear every log) …
            if torn_logs != 0 {
                out.push(FaultEvent::ServerCrash {
                    serial,
                    torn,
                    torn_logs: 0,
                });
            }
            // … then the tear itself.
            out.push(FaultEvent::ServerCrash {
                serial,
                torn: None,
                torn_logs: 0,
            });
        }
        FaultEvent::Partition {
            serial,
            direction,
            ops,
        } => {
            if direction == PartitionDirection::Both {
                for d in [
                    PartitionDirection::ClientToQm,
                    PartitionDirection::QmToClient,
                ] {
                    out.push(FaultEvent::Partition {
                        serial,
                        direction: d,
                        ops,
                    });
                }
            }
            if ops > 1 {
                out.push(FaultEvent::Partition {
                    serial,
                    direction,
                    ops: 1,
                });
            }
        }
        FaultEvent::Delay { serial, millis } if millis > 5 => {
            out.push(FaultEvent::Delay { serial, millis: 5 })
        }
        FaultEvent::RepoCrash {
            serial,
            part,
            torn: Some(_),
        } => out.push(FaultEvent::RepoCrash {
            serial,
            part,
            torn: None,
        }),
        FaultEvent::PartPartition {
            serial,
            part,
            direction,
            ops,
        } => {
            if direction == PartitionDirection::Both {
                for d in [
                    PartitionDirection::ClientToQm,
                    PartitionDirection::QmToClient,
                ] {
                    out.push(FaultEvent::PartPartition {
                        serial,
                        part,
                        direction: d,
                        ops,
                    });
                }
            }
            if ops > 1 {
                out.push(FaultEvent::PartPartition {
                    serial,
                    part,
                    direction,
                    ops: 1,
                });
            }
        }
        _ => {}
    }
    out
}

/// Shrink `script` to a (locally) minimal still-failing script.
pub fn shrink(script: &FaultScript, cfg: &ExplorerConfig) -> ShrinkReport {
    let mut attempts = 0u64;
    let mut fails = |s: &FaultScript| {
        attempts += 1;
        run_script(s, cfg).failed()
    };
    let mut best = script.clone();
    if !fails(&best) {
        return ShrinkReport {
            script: best,
            attempts,
            input_failed: false,
        };
    }
    loop {
        let mut improved = false;

        // Drop each event outright.
        let mut i = 0;
        while i < best.events.len() {
            let mut cand = best.clone();
            cand.events.remove(i);
            if fails(&cand) {
                best = cand;
                improved = true;
            } else {
                i += 1;
            }
        }

        // Weaken the events that survived.
        for i in 0..best.events.len() {
            for weaker in weakenings(&best.events[i]) {
                let mut cand = best.clone();
                cand.events[i] = weaker;
                if fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        // Trim the workload past the last faulted serial.
        let last_faulted = best
            .events
            .iter()
            .map(FaultEvent::serial)
            .max()
            .unwrap_or(1);
        if best.n_requests > last_faulted {
            let mut cand = best.clone();
            cand.n_requests = last_faulted;
            if fails(&cand) {
                best = cand;
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }
    ShrinkReport {
        script: best,
        attempts,
        input_failed: true,
    }
}
