//! Deterministic crash schedules.

use crate::driver::CrashPoint;
use rrq_workload::arrivals::SplitMix;
use std::collections::HashMap;

/// A reproducible schedule: serial → crash point.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    map: HashMap<u64, CrashPoint>,
}

impl CrashSchedule {
    /// No crashes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash with probability `p` at each serial, the point chosen uniformly
    /// among the three Fig 1 states; deterministic in `seed`.
    pub fn random(n_requests: u64, p: f64, seed: u64) -> Self {
        let mut rng = SplitMix::new(seed);
        let mut map = HashMap::new();
        for serial in 1..=n_requests {
            if rng.next_f64() < p {
                let point = match rng.next_u64() % 3 {
                    0 => CrashPoint::AfterSend,
                    1 => CrashPoint::AfterReceive,
                    _ => CrashPoint::AfterProcess,
                };
                map.insert(serial, point);
            }
        }
        CrashSchedule { map }
    }

    /// Crash at exactly one point.
    pub fn single(serial: u64, point: CrashPoint) -> Self {
        let mut map = HashMap::new();
        map.insert(serial, point);
        CrashSchedule { map }
    }

    /// Crash at every serial with the same point (worst case).
    pub fn every(n_requests: u64, point: CrashPoint) -> Self {
        CrashSchedule {
            map: (1..=n_requests).map(|s| (s, point)).collect(),
        }
    }

    /// Look up the crash for `serial`.
    pub fn get(&self, serial: u64) -> Option<CrashPoint> {
        self.map.get(&serial).copied()
    }

    /// Number of scheduled crashes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no crashes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        let a = CrashSchedule::random(100, 0.3, 7);
        let b = CrashSchedule::random(100, 0.3, 7);
        for s in 1..=100 {
            assert_eq!(a.get(s), b.get(s));
        }
        assert!(!a.is_empty());
        assert!(a.len() < 100);
    }

    #[test]
    fn probability_extremes() {
        assert!(CrashSchedule::random(50, 0.0, 1).is_empty());
        assert_eq!(CrashSchedule::random(50, 1.0, 1).len(), 50);
        assert_eq!(CrashSchedule::every(10, CrashPoint::AfterSend).len(), 10);
        assert_eq!(
            CrashSchedule::single(3, CrashPoint::AfterReceive).get(3),
            Some(CrashPoint::AfterReceive)
        );
    }
}
