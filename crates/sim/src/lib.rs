//! # rrq-sim
//!
//! The failure-injection harness and correctness oracles.
//!
//! The paper argues (§2, §3, §5) that its protocols preserve request/reply
//! matching, exactly-once request processing, and at-least-once reply
//! processing "despite failures and recoveries". This crate makes those
//! arguments executable:
//!
//! * [`driver::ClientCrashDriver`] runs the Fig 2 client program with crashes
//!   injected at every protocol state of Fig 1 (after Send, after Receive
//!   before processing, after processing) and reports how resynchronization
//!   resolved each one.
//! * [`node::ServerNodeSim`] crash-restarts a whole server node — threads
//!   stopped, unsynced storage lost, repository recovered from log — under
//!   load.
//! * [`oracle`] — the checkers: a store-backed [`oracle::EffectLedger`] that
//!   counts committed handler effects per rid (exactly-once = every count is
//!   exactly 1), and a [`oracle::ReplyMatcher`] for request/reply matching
//!   and at-least-once reply processing.
//! * [`schedule`] — deterministic crash schedules from a seed.
//! * [`script`] / [`explorer`] / [`shrink`] — the deterministic
//!   fault-schedule explorer: seeded [`script::FaultScript`]s composing
//!   client crashes, server crashes with torn writes, partitions, and
//!   delays; [`explorer::run_sweep`] runs the bank workload under each
//!   script and checks the full oracle battery, with a reproducible trace
//!   digest per script; [`shrink::shrink`] minimizes failing scripts into
//!   replayable regression files.

pub mod driver;
pub mod explorer;
pub mod node;
pub mod oracle;
pub mod schedule;
pub mod script;
pub mod shrink;

pub use driver::{ClientCrashDriver, CrashPoint, DriverReport};
pub use explorer::{run_script, run_sweep, ExplorerConfig, InjectedBug, RunOutcome, SweepReport};
pub use node::ServerNodeSim;
pub use oracle::{EffectLedger, ReplyMatcher};
pub use script::{FaultEvent, FaultScript, PartitionDirection};
pub use shrink::{shrink, ShrinkReport};
