//! # rrq-sim
//!
//! The failure-injection harness and correctness oracles.
//!
//! The paper argues (§2, §3, §5) that its protocols preserve request/reply
//! matching, exactly-once request processing, and at-least-once reply
//! processing "despite failures and recoveries". This crate makes those
//! arguments executable:
//!
//! * [`driver::ClientCrashDriver`] runs the Fig 2 client program with crashes
//!   injected at every protocol state of Fig 1 (after Send, after Receive
//!   before processing, after processing) and reports how resynchronization
//!   resolved each one.
//! * [`node::ServerNodeSim`] crash-restarts a whole server node — threads
//!   stopped, unsynced storage lost, repository recovered from log — under
//!   load.
//! * [`oracle`] — the checkers: a store-backed [`oracle::EffectLedger`] that
//!   counts committed handler effects per rid (exactly-once = every count is
//!   exactly 1), and a [`oracle::ReplyMatcher`] for request/reply matching
//!   and at-least-once reply processing.
//! * [`schedule`] — deterministic crash schedules from a seed.

pub mod driver;
pub mod node;
pub mod oracle;
pub mod schedule;

pub use driver::{ClientCrashDriver, CrashPoint, DriverReport};
pub use node::ServerNodeSim;
pub use oracle::{EffectLedger, ReplyMatcher};
