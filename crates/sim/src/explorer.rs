//! The deterministic fault-schedule explorer.
//!
//! Runs the bank workload through the full client↔QM stack — clerk over RPC
//! over the fault-injectable bus, against a crash-restartable server node —
//! under one [`FaultScript`], then checks the entire oracle battery:
//! exactly-once request processing ([`EffectLedger`]), request/reply
//! matching and reply multiplicity ([`ReplyMatcher`]), money conservation,
//! and Fig 1 / Fig 5 protocol conformance (`rrq-check`).
//!
//! Determinism contract: the run's [`RunOutcome::digest`] is an FNV-1a hash
//! of the client-observable trace only (operations attempted, their
//! outcomes, incarnation boundaries, final oracle summary). The same script
//! always produces the same digest — partitions fail fast at the sender,
//! delays stay far below the RPC timeout, and no wall-clock value enters the
//! trace — so a failing seed replays bit-identically.

use crate::driver::CrashPoint;
use crate::node::{PlannedSpec, ServerFactory, ServerNodeSim};
use crate::oracle::{metrics_conservation, EffectLedger, ReplyMatcher};
use crate::script::{point_name, FaultEvent, FaultScript, PartitionDirection};
use rrq_check::protocol::Conformance;
use rrq_core::api::QmApi;
use rrq_core::clerk::{Clerk, ClerkConfig, SendMode};
use rrq_core::client::ReplyProcessor;
use rrq_core::error::CoreError;
use rrq_core::remote::{QmRpcServer, RemoteQm};
use rrq_core::request::Reply;
use rrq_core::rid::Rid;
use rrq_core::route::RoutedQm;
use rrq_core::server::{Server, ServerConfig};
use rrq_net::rpc::ServerGuard;
use rrq_net::{FaultPlan, NetworkBus};
use rrq_qm::repository::{ExecMode, RepoOptions, Repository};
use rrq_qm::route::MAX_REPO_PARTITIONS;
use rrq_workload::bank::{self, Transfer};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The one client identity every script drives.
pub const CLIENT_ID: &str = "c1";
const CLIENT_EP: &str = "cl.c1";
const QM_EP: &str = "qm";
const REQ_QUEUE: &str = "req";
/// Short per-RPC timeout: partitions fail fast at the sender, so the only
/// waiting left is the lost-reply direction (request delivered, response
/// cut), which costs one timeout per failed operation.
const RPC_TIMEOUT: Duration = Duration::from_millis(150);
/// Generous receive window for the fault-free path — the reply always
/// arrives, it is never a timeout race.
const RECEIVE_BLOCK: Duration = Duration::from_secs(10);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Deliberate protocol bugs the explorer can inject into its own client
/// loop, to prove the oracles (and the shrinker) actually bite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// During resynchronization, when the last reply was received but cannot
    /// be proven processed, skip the Rereceive and assume it was — breaking
    /// at-least-once reply processing (§3's central obligation).
    SkipRereceive,
    /// Double every `qm.enqueue.committed` increment (an accounting bug in
    /// the instrumentation layer, not the protocol) — client-invisible, so
    /// only the metrics-conservation oracle can catch it.
    DoubleCountEnqueue,
}

/// Explorer parameters shared by a whole sweep.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Bank accounts in the workload.
    pub accounts: u32,
    /// Initial balance per account (cents).
    pub initial_balance: i64,
    /// Deliberate client bug to inject (tests of the harness itself).
    pub bug: Option<InjectedBug>,
    /// Where failing scripts are persisted as replayable files.
    pub out_dir: Option<PathBuf>,
    /// WAL partitions the server node runs with (1 = the monolithic log).
    /// Scripted per-log tears only bite when this is above one.
    pub wal_partitions: usize,
    /// Run the server's dequeues through the flat-combining front end
    /// (DESIGN.md §24). Persists across scripted crashes, so recovery
    /// re-opens with combining still on — the crash-mid-combine case.
    pub dequeue_combining: bool,
    /// Shared-nothing repository partitions (DESIGN.md S25). Above one, the
    /// node serves one RPC endpoint per partition, the clerk routes through
    /// [`RoutedQm`], `repo-crash` events strike a single partition's
    /// devices, and `part-partition` events cut one endpoint's link only.
    pub repo_partitions: usize,
    /// Execution mode (DESIGN.md §26). `Planned` replaces the dequeue-loop
    /// server with an epoch-batched planned pool, so scripted crashes land
    /// inside plan, execute, and epoch-commit windows.
    pub exec_mode: ExecMode,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            accounts: 4,
            initial_balance: 10_000,
            bug: None,
            out_dir: None,
            wal_partitions: 1,
            dequeue_combining: false,
            repo_partitions: 1,
            exec_mode: ExecMode::default(),
        }
    }
}

/// What one script run observed.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// FNV-1a digest of the client-observable trace (determinism handle).
    pub digest: u64,
    /// Oracle violations — empty means the guarantees held.
    pub violations: Vec<String>,
    /// The trace the digest covers, for diagnostics.
    pub trace: Vec<String>,
    /// Client process incarnations (1 = no client crash or network outage).
    pub incarnations: u64,
    /// Server node crashes injected.
    pub server_crashes: u64,
}

impl RunOutcome {
    /// Did any oracle fire?
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// The deterministic transfer for a serial: neighbouring accounts, amount
/// varied by serial so misdirected effects shift balances detectably.
pub fn transfer_for(serial: u64, accounts: u32) -> Transfer {
    let n = u64::from(accounts.max(2));
    Transfer {
        from: (serial % n) as u32,
        to: ((serial + 1) % n) as u32,
        amount: 100 + (serial as i64 % 7) * 10,
    }
}

fn expected_balances(cfg: &ExplorerConfig, n_requests: u64) -> Vec<i64> {
    let mut balances = vec![cfg.initial_balance; cfg.accounts as usize];
    for serial in 1..=n_requests {
        let t = transfer_for(serial, cfg.accounts);
        balances[t.from as usize] -= t.amount;
        balances[t.to as usize] += t.amount;
    }
    balances
}

/// The testable device: a processed-reply counter whose checkpoint is the
/// count — §3's ticket-printer argument in its simplest form. Every
/// processed reply is also recorded with the [`ReplyMatcher`].
struct CountingProcessor {
    processed: u64,
    matcher: Arc<ReplyMatcher>,
}

impl ReplyProcessor for CountingProcessor {
    fn checkpoint(&mut self) -> Vec<u8> {
        self.processed.to_le_bytes().to_vec()
    }

    fn process(&mut self, rid: &Rid, reply: &Reply) {
        self.processed += 1;
        self.matcher.record(rid, reply);
    }

    fn already_processed(&mut self, _rid: &Rid, ckpt: Option<&[u8]>) -> bool {
        let at = ckpt
            .and_then(|c| c.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        self.processed > at
    }
}

/// RPC endpoint of repository partition `p`. Partition 0 keeps the legacy
/// name so single-partition runs are byte-identical to the historical trace.
fn qm_ep(p: usize) -> String {
    if p == 0 {
        QM_EP.to_string()
    } else {
        format!("{QM_EP}.p{p}")
    }
}

/// Client-side endpoint used to talk to partition `p`. Distinct per
/// partition because [`NetworkBus::endpoint`] replaces any existing sender
/// registered under a name — each `RemoteQm` needs its own reply mailbox.
fn client_ep(p: usize) -> String {
    if p == 0 {
        CLIENT_EP.to_string()
    } else {
        format!("{CLIENT_EP}.p{p}")
    }
}

fn make_clerk(bus: &NetworkBus, parts: usize) -> Clerk {
    let mut cfg = ClerkConfig::new(CLIENT_ID, REQ_QUEUE);
    cfg.receive_block = RECEIVE_BLOCK;
    cfg.send_mode = SendMode::Acked;
    let api: Arc<dyn QmApi> = if parts <= 1 {
        let mut api = RemoteQm::new(bus, CLIENT_EP, QM_EP);
        api.set_rpc_timeout(RPC_TIMEOUT);
        Arc::new(api)
    } else {
        let apis: Vec<Arc<dyn QmApi>> = (0..parts)
            .map(|p| {
                let mut api = RemoteQm::new(bus, &client_ep(p), &qm_ep(p));
                api.set_rpc_timeout(RPC_TIMEOUT);
                Arc::new(api) as Arc<dyn QmApi>
            })
            .collect();
        Arc::new(RoutedQm::new(apis))
    };
    Clerk::new(api, cfg)
}

/// Serve the repository over RPC: one endpoint for the whole node at one
/// partition, one scope-checked endpoint per partition above that.
fn spawn_rpc(bus: &NetworkBus, repo: Arc<Repository>, parts: usize) -> Vec<ServerGuard> {
    if parts <= 1 {
        vec![QmRpcServer::spawn(bus, QM_EP, repo)]
    } else {
        (0..parts)
            .map(|p| QmRpcServer::spawn_partition(bus, &qm_ep(p), Arc::clone(&repo), p))
            .collect()
    }
}

/// A failed client operation: trace it, and spend one unit of the active
/// partition's outage budget (healing every cut when the budget runs out, so
/// every script terminates).
fn op_failed(
    trace: &mut Vec<String>,
    outage: &mut Option<u32>,
    faults: &FaultPlan,
    parts: usize,
    op: &str,
    serial: u64,
    e: &CoreError,
) {
    trace.push(format!("{op} {serial} err={e}"));
    if let Some(remaining) = outage.as_mut() {
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            for p in 0..parts {
                faults.heal_pair(&client_ep(p), &qm_ep(p));
            }
            *outage = None;
            trace.push("heal".into());
        }
    }
}

/// Fire the pending client-crash event for `(serial, point)`, if any.
fn fire_client_crash(
    events: &mut [(FaultEvent, bool)],
    serial: u64,
    point: CrashPoint,
    trace: &mut Vec<String>,
) -> bool {
    for (ev, applied) in events.iter_mut() {
        if *applied {
            continue;
        }
        if let FaultEvent::ClientCrash {
            serial: es,
            point: p,
        } = *ev
        {
            if es == serial && p == point {
                *applied = true;
                trace.push(format!("client-crash {serial} {}", point_name(point)));
                return true;
            }
        }
    }
    false
}

/// Run `script` in a fresh conformance session.
pub fn run_script(script: &FaultScript, cfg: &ExplorerConfig) -> RunOutcome {
    let (checker, _session) = Conformance::install();
    run_script_with(script, cfg, &checker)
}

/// Run `script` against an already-installed [`Conformance`] checker (sweep
/// mode: one observer session, reset per script). `checker` must be the
/// installed observer, or protocol events go unchecked.
pub fn run_script_with(
    script: &FaultScript,
    cfg: &ExplorerConfig,
    checker: &Conformance,
) -> RunOutcome {
    checker.reset();
    // Fresh metrics session per script: counters start at zero, and every
    // law in [`metrics_conservation`] refers to this run alone. Declared
    // before the node so it outlives the repository (the depth gauge's
    // retire-on-drop must still be observed).
    let obs = rrq_obs::Session::start();
    if cfg.bug == Some(InjectedBug::DoubleCountEnqueue) {
        obs.double_count(Some("qm.enqueue.committed"));
    }
    let mut trace: Vec<String> = script
        .encode()
        .lines()
        .map(|l| format!("script {l}"))
        .collect();
    let mut violations: Vec<String> = Vec::new();

    let bus = NetworkBus::new(script.seed);
    bus.faults().set_fail_fast(true);

    let matcher = Arc::new(ReplyMatcher::new());
    let mut processor = CountingProcessor {
        processed: 0,
        matcher: Arc::clone(&matcher),
    };

    // Server names are unique per node incarnation: a thread killed
    // mid-request leaves its conformance machine parked in Processing, and a
    // reused name would trip the checker on the next boot.
    let incarnation_counter = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&incarnation_counter);
    let planned_mode = cfg.exec_mode == ExecMode::Planned;
    let factory: ServerFactory = Arc::new(move |repo| {
        if planned_mode {
            // The planned pool (below) replaces the dequeue-loop server.
            let _ = repo;
            return Ok(Vec::new());
        }
        let i = counter.fetch_add(1, Ordering::AcqRel);
        let scfg = ServerConfig::new(format!("srv-i{i}"), REQ_QUEUE);
        Ok(vec![Server::new(
            Arc::clone(repo),
            scfg,
            EffectLedger::instrument(bank::single_txn_handler()),
        )?])
    });
    let mut node = ServerNodeSim::with_factory(
        format!("exp-{}", script.seed),
        vec![REQ_QUEUE.into(), format!("reply.{CLIENT_ID}")],
        factory,
    );
    if planned_mode {
        node.set_planned(PlannedSpec {
            queue: REQ_QUEUE.into(),
            workers: 2,
            batch_max: 32,
            handler_factory: Arc::new(|| EffectLedger::instrument(bank::single_txn_handler())),
            access: bank::transfer_access(),
        });
    }
    let parts = cfg.repo_partitions.clamp(1, MAX_REPO_PARTITIONS);
    node.set_repo_options(RepoOptions {
        wal_partitions: cfg.wal_partitions,
        dequeue_combining: cfg.dequeue_combining,
        repo_partitions: parts,
        exec_mode: cfg.exec_mode,
        ..RepoOptions::default()
    });
    node.start().expect("initial server boot failed");
    bank::seed_accounts(&node.repo(), cfg.accounts, cfg.initial_balance)
        .expect("seeding accounts failed");
    let mut rpc = spawn_rpc(&bus, node.repo(), parts);

    let mut events: Vec<(FaultEvent, bool)> = script.events.iter().map(|e| (*e, false)).collect();
    let mut outage: Option<u32> = None;
    let mut delay_active = false;
    let mut incarnations = 0u64;
    // Every fault event costs a bounded number of extra incarnations
    // (partitions: one per budgeted failed op); beyond that is livelock.
    let max_incarnations = 3 * script.n_requests + 8 * script.events.len() as u64 + 20;

    'incarnation: loop {
        incarnations += 1;
        if incarnations > max_incarnations {
            violations.push(format!(
                "livelock: exceeded {max_incarnations} incarnations"
            ));
            break 'incarnation;
        }
        trace.push(format!("incarnation {incarnations}"));
        let clerk = make_clerk(&bus, parts);
        let info = match clerk.connect() {
            Ok(i) => i,
            Err(e) => {
                op_failed(
                    &mut trace,
                    &mut outage,
                    bus.faults(),
                    parts,
                    "connect",
                    0,
                    &e,
                );
                continue 'incarnation;
            }
        };
        trace.push(format!(
            "resync s={:?} r={:?}",
            info.s_rid.as_ref().map(|r| r.serial),
            info.r_rid.as_ref().map(|r| r.serial)
        ));

        // --- Fig 2 resynchronization ---
        let mut serial_done = 0u64;
        match (&info.s_rid, &info.r_rid) {
            (None, _) => {}
            (Some(s), r) if r.as_ref() != Some(s) => {
                // Request outstanding, reply never received.
                let ckpt = processor.checkpoint();
                match clerk.receive(&ckpt) {
                    Ok(reply) => {
                        if reply.rid != *s {
                            violations.push(format!(
                                "resync mismatch: outstanding {s}, reply for {}",
                                reply.rid
                            ));
                            break 'incarnation;
                        }
                        processor.process(s, &reply);
                        trace.push(format!("resync-received {}", s.serial));
                        serial_done = s.serial;
                    }
                    Err(e) => {
                        op_failed(
                            &mut trace,
                            &mut outage,
                            bus.faults(),
                            parts,
                            "receive",
                            s.serial,
                            &e,
                        );
                        continue 'incarnation;
                    }
                }
            }
            (Some(s), _) => {
                if processor.already_processed(s, info.ckpt.as_deref()) {
                    trace.push(format!("resync-already-processed {}", s.serial));
                } else if cfg.bug == Some(InjectedBug::SkipRereceive) {
                    trace.push(format!("bug: skipped rereceive of {}", s.serial));
                } else {
                    match clerk.rereceive() {
                        Ok(reply) => {
                            processor.process(s, &reply);
                            trace.push(format!("resync-reprocessed {}", s.serial));
                        }
                        Err(e) => {
                            op_failed(
                                &mut trace,
                                &mut outage,
                                bus.faults(),
                                parts,
                                "rereceive",
                                s.serial,
                                &e,
                            );
                            continue 'incarnation;
                        }
                    }
                }
                serial_done = s.serial;
            }
        }

        // --- main request loop ---
        let mut serial = serial_done + 1;
        while serial <= script.n_requests {
            // Client crashes anchored to serials resync already finished can
            // never fire.
            for (ev, applied) in events.iter_mut() {
                if !*applied && matches!(ev, FaultEvent::ClientCrash { .. }) && ev.serial() < serial
                {
                    *applied = true;
                }
            }
            // Network events (partitions, delays) due at or before this
            // serial take effect before its send.
            for (ev, applied) in events.iter_mut() {
                if *applied || ev.serial() > serial {
                    continue;
                }
                match *ev {
                    FaultEvent::Partition { direction, ops, .. } => {
                        *applied = true;
                        // A node-wide cut severs every partition's link.
                        for p in 0..parts {
                            let (c, q) = (client_ep(p), qm_ep(p));
                            match direction {
                                PartitionDirection::ClientToQm => bus.faults().partition(&c, &q),
                                PartitionDirection::QmToClient => bus.faults().partition(&q, &c),
                                PartitionDirection::Both => bus.faults().partition_pair(&c, &q),
                            }
                        }
                        outage = Some(outage.map_or(ops, |r| r.max(ops)));
                        trace.push(format!("partition {} ops={ops}", direction.name()));
                    }
                    FaultEvent::PartPartition {
                        part,
                        direction,
                        ops,
                        ..
                    } => {
                        *applied = true;
                        // Directional cut of ONE partition's link; the rest
                        // of the cluster stays reachable, so only requests
                        // routed at the cut partition fail.
                        let p = part as usize % parts;
                        let (c, q) = (client_ep(p), qm_ep(p));
                        match direction {
                            PartitionDirection::ClientToQm => bus.faults().partition(&c, &q),
                            PartitionDirection::QmToClient => bus.faults().partition(&q, &c),
                            PartitionDirection::Both => bus.faults().partition_pair(&c, &q),
                        }
                        outage = Some(outage.map_or(ops, |r| r.max(ops)));
                        trace.push(format!(
                            "part-partition p{p} {} ops={ops}",
                            direction.name()
                        ));
                    }
                    FaultEvent::Delay { millis, .. } => {
                        *applied = true;
                        let d = Duration::from_millis(millis);
                        for p in 0..parts {
                            let (c, q) = (client_ep(p), qm_ep(p));
                            bus.faults().set_delay(&c, &q, d);
                            bus.faults().set_delay(&q, &c, d);
                        }
                        delay_active = true;
                        trace.push(format!("delay {millis}ms"));
                    }
                    _ => {}
                }
            }

            let rid = Rid::new(CLIENT_ID, serial);
            match clerk.send(
                "transfer",
                transfer_for(serial, cfg.accounts).encode(),
                rid.clone(),
            ) {
                Ok(()) => trace.push(format!("send {serial} ok")),
                Err(e) => {
                    op_failed(
                        &mut trace,
                        &mut outage,
                        bus.faults(),
                        parts,
                        "send",
                        serial,
                        &e,
                    );
                    continue 'incarnation;
                }
            }
            if fire_client_crash(&mut events, serial, CrashPoint::AfterSend, &mut trace) {
                continue 'incarnation;
            }

            // Server crashes due at or before this serial fire after its
            // send: the request is stably queued, the node dies and recovers,
            // and the reply must still come. `repo-crash` is the
            // partition-scoped variant: only one partition's devices lose
            // their volatile bytes, but the process (and so every RPC
            // endpoint) still bounces.
            for (ev, applied) in events.iter_mut() {
                if *applied {
                    continue;
                }
                let crashed = match *ev {
                    FaultEvent::ServerCrash {
                        serial: es,
                        torn,
                        torn_logs,
                    } if es <= serial => {
                        rpc.clear();
                        node.crash_torn_logs(torn, torn_logs);
                        trace.push(match torn {
                            Some(m) if torn_logs != 0 => {
                                format!("server-crash torn={} logs={torn_logs:#04x}", m.name())
                            }
                            Some(m) => format!("server-crash torn={}", m.name()),
                            None => "server-crash".into(),
                        });
                        true
                    }
                    FaultEvent::RepoCrash {
                        serial: es,
                        part,
                        torn,
                    } if es <= serial => {
                        rpc.clear();
                        let p = part as usize % parts;
                        node.crash_partition(p, torn);
                        trace.push(match torn {
                            Some(m) => format!("repo-crash p{p} torn={}", m.name()),
                            None => format!("repo-crash p{p}"),
                        });
                        true
                    }
                    _ => false,
                };
                if crashed {
                    *applied = true;
                    match node.start() {
                        Ok(_) => rpc = spawn_rpc(&bus, node.repo(), parts),
                        Err(e) => {
                            violations.push(format!("server recovery failed: {e}"));
                            break 'incarnation;
                        }
                    }
                }
            }

            let ckpt = processor.checkpoint();
            match clerk.receive(&ckpt) {
                Ok(reply) => {
                    if reply.rid != rid {
                        violations.push(format!(
                            "reply mismatch: sent {rid}, got reply for {}",
                            reply.rid
                        ));
                        break 'incarnation;
                    }
                    if fire_client_crash(&mut events, serial, CrashPoint::AfterReceive, &mut trace)
                    {
                        continue 'incarnation;
                    }
                    processor.process(&rid, &reply);
                    trace.push(format!("recv {serial} ok"));
                    if fire_client_crash(&mut events, serial, CrashPoint::AfterProcess, &mut trace)
                    {
                        continue 'incarnation;
                    }
                }
                Err(e) => {
                    op_failed(
                        &mut trace,
                        &mut outage,
                        bus.faults(),
                        parts,
                        "receive",
                        serial,
                        &e,
                    );
                    continue 'incarnation;
                }
            }

            if delay_active {
                for p in 0..parts {
                    let (c, q) = (client_ep(p), qm_ep(p));
                    bus.faults().set_delay(&c, &q, Duration::ZERO);
                    bus.faults().set_delay(&q, &c, Duration::ZERO);
                }
                delay_active = false;
                trace.push("delay cleared".into());
            }
            serial += 1;
        }

        match clerk.disconnect() {
            Ok(()) => trace.push("disconnect ok".into()),
            Err(e) => trace.push(format!("disconnect err={e}")),
        }
        break 'incarnation;
    }

    // --- oracle battery ---
    bus.faults().heal_all();
    let server_crashes = node.crash_count();
    if node.is_up() {
        let repo = node.repo();
        let expected: Vec<Rid> = (1..=script.n_requests)
            .map(|s| Rid::new(CLIENT_ID, s))
            .collect();
        match EffectLedger::violations(&repo, &expected) {
            Ok(v) => violations.extend(v),
            Err(e) => violations.push(format!("effect ledger unreadable: {e}")),
        }
        violations.extend(matcher.mismatches());
        for r in matcher.missing(&expected) {
            violations.push(format!("reply for {r} never processed"));
        }
        let mut dups = matcher.duplicated();
        dups.sort_by_key(|(r, _)| r.serial);
        for (r, n) in dups {
            violations.push(format!(
                "reply for {r} processed {n} times (device is testable)"
            ));
        }
        let want_total = i64::from(cfg.accounts) * cfg.initial_balance;
        match bank::total_money(&repo, cfg.accounts) {
            Ok(t) if t == want_total => {}
            Ok(t) => violations.push(format!("money not conserved: {t} != {want_total}")),
            Err(e) => violations.push(format!("total_money unreadable: {e}")),
        }
        match bank::clearing_count(&repo) {
            Ok(c) if c as u64 == script.n_requests => {}
            Ok(c) => violations.push(format!(
                "clearing count {c} != {} requests",
                script.n_requests
            )),
            Err(e) => violations.push(format!("clearing count unreadable: {e}")),
        }
        let model = expected_balances(cfg, script.n_requests);
        for i in 0..cfg.accounts {
            match bank::balance(&repo, i) {
                Ok(b) if b == model[i as usize] => {}
                Ok(b) => violations.push(format!(
                    "account {i} balance {b} != model {}",
                    model[i as usize]
                )),
                Err(e) => violations.push(format!("balance {i} unreadable: {e}")),
            }
            trace.push(format!("balance {i}={}", model[i as usize]));
        }
        // Metrics conservation, only on otherwise-clean runs: violation
        // paths (livelock in particular) leave servers mid-flight, where a
        // counter snapshot is not a quiescent point and its noise would make
        // the digest nondeterministic.
        if violations.is_empty() {
            let ledger_total = EffectLedger::counts(&repo)
                .map(|c| c.values().map(|&n| u64::from(n)).sum::<u64>())
                .unwrap_or(0);
            violations.extend(metrics_conservation(&obs.snapshot(), &repo, ledger_total));
        }
    }
    for v in checker.violations() {
        violations.push(format!("conformance: {}: {}", v.entity, v.detail));
    }
    // Oracle iteration order (HashMaps inside the ledger and matcher) must
    // not leak into the digest.
    violations.sort();

    rpc.clear();
    node.shutdown();

    trace.push(format!("incarnations {incarnations}"));
    trace.push(format!("server-crashes {server_crashes}"));
    trace.push(format!("violations {}", violations.len()));
    for v in &violations {
        trace.push(format!("violation {v}"));
    }
    let mut digest = FNV_OFFSET;
    for line in &trace {
        digest = fnv1a(digest, line.as_bytes());
        digest = fnv1a(digest, b"\n");
    }
    RunOutcome {
        digest,
        violations,
        trace,
        incarnations,
        server_crashes,
    }
}

/// One failing script of a sweep.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The script's generation seed.
    pub seed: u64,
    /// The failing run.
    pub outcome: RunOutcome,
    /// The script itself.
    pub script: FaultScript,
    /// Where the replayable script file was written (when
    /// [`ExplorerConfig::out_dir`] is set).
    pub script_path: Option<PathBuf>,
}

/// What a sweep observed.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scripts executed.
    pub scripts_run: u64,
    /// FNV-1a fold of every per-script digest — one number summarizing the
    /// whole sweep's behaviour.
    pub digest_of_digests: u64,
    /// Scripts whose oracles fired.
    pub failures: Vec<SweepFailure>,
}

/// Run `count` generated scripts starting at `first_seed` under one
/// conformance session (reset per script). Failing scripts are persisted to
/// [`ExplorerConfig::out_dir`] as replayable files.
pub fn run_sweep(first_seed: u64, count: u64, cfg: &ExplorerConfig) -> SweepReport {
    let (checker, _session) = Conformance::install();
    let mut digest = FNV_OFFSET;
    let mut failures = Vec::new();
    for seed in first_seed..first_seed.saturating_add(count) {
        let script = FaultScript::generate(seed);
        let outcome = run_script_with(&script, cfg, &checker);
        digest = fnv1a(digest, &outcome.digest.to_le_bytes());
        if outcome.failed() {
            let script_path = cfg.out_dir.as_ref().and_then(|d| {
                let p = d.join(format!("fail-seed-{seed}.rrqs"));
                script.write_to(&p).ok().map(|_| p)
            });
            failures.push(SweepFailure {
                seed,
                outcome,
                script: script.clone(),
                script_path,
            });
        }
    }
    SweepReport {
        scripts_run: count,
        digest_of_digests: digest,
        failures,
    }
}

/// Decode and re-run a persisted script file.
pub fn replay_file(path: &Path, cfg: &ExplorerConfig) -> Result<(FaultScript, RunOutcome), String> {
    let script = FaultScript::read_from(path)?;
    let outcome = run_script(&script, cfg);
    Ok((script, outcome))
}
