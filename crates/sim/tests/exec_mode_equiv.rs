//! Planned-vs-locked execution equivalence (DESIGN.md §26).
//!
//! `ExecMode::Planned` replaces 2PL arbitration with an epoch plan: batches
//! are partitioned into per-key access queues and executed lock-free in
//! plan priority order. The mode is only admissible because it is
//! *observationally equivalent* to the locked baseline, which this battery
//! pins from four sides:
//!
//! * **Lockstep**: the same seeded workload through a 1-server locked
//!   repository and a workers=1 planned pool (the deterministic inline
//!   mode) produces the identical reply order, final account balances,
//!   queue depths, and a clean index — across 16 generated schedules and
//!   varying epoch sizes.
//! * **Crash windows**: a scripted crash inside each epoch window (plan /
//!   execute / commit, via the [`rrq_core::planned::EpochHook`]) followed
//!   by recovery and a re-drain still yields exactly-once processing:
//!   every request replied to exactly once, money conserved, depth
//!   accounting clean.
//! * **Concurrency**: a 4-worker pool reaches the same final state as the
//!   inline mode (reply *order* may differ across disjoint keys; the
//!   reply multiset and all balances may not).
//! * **Misspeculation**: an access oracle that deliberately under-declares
//!   forces `OutsidePlan` aborts; the abort-and-replan path must converge
//!   to the same correct final state while the stats record the retries.
//!
//! The `open_with` compatibility matrix (planned × combining, planned ×
//! multi-partition → typed rejection) rides along as directed regressions.

use rrq_core::planned::{EpochWindow, PlannedConfig, PlannedPool};
use rrq_core::request::{Reply, ReplyStatus, Request};
use rrq_core::rid::Rid;
use rrq_core::server::{Served, Server, ServerConfig};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{ExecMode, RepoDisks, RepoOptions, Repository};
use rrq_qm::QmError;
use rrq_storage::codec::{Decode, Encode};
use rrq_txn::LockKey;
use rrq_workload::arrivals::SplitMix;
use rrq_workload::bank::{self, Transfer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const REQ: &str = "req";
const REPLY: &str = "reply.c1";
const ACCOUNTS: u32 = 5;
const INITIAL: i64 = 10_000;

/// One generated request: serial, op, body. `op != "transfer"` and
/// undecodable bodies are unplannable (solo path) on the planned side; the
/// locked handler treats them identically (it never reads `op`, and a bad
/// body is a Reject on both sides).
#[derive(Clone)]
struct Job {
    serial: u64,
    op: &'static str,
    body: Vec<u8>,
}

fn gen_jobs(seed: u64, n: u64, all_plannable: bool) -> Vec<Job> {
    let mut rng = SplitMix::new(seed ^ 0xA076_1D64_78BD_642F);
    (1..=n)
        .map(|serial| {
            let t = Transfer {
                from: (rng.next_u64() % u64::from(ACCOUNTS)) as u32,
                to: (rng.next_u64() % u64::from(ACCOUNTS)) as u32,
                amount: 1 + (rng.next_u64() % 500) as i64,
            };
            if all_plannable {
                return Job {
                    serial,
                    op: "transfer",
                    body: t.encode(),
                };
            }
            match rng.next_u64() % 8 {
                // Valid transfer under an op the access fn refuses: solo on
                // the planned side, ordinary on the locked side.
                0 => Job {
                    serial,
                    op: "audit",
                    body: t.encode(),
                },
                // Undecodable body: Reject (failed reply) on both sides.
                1 => Job {
                    serial,
                    op: "transfer",
                    body: vec![0xFF; 3],
                },
                _ => Job {
                    serial,
                    op: "transfer",
                    body: t.encode(),
                },
            }
        })
        .collect()
}

fn expected_balances(jobs: &[Job]) -> Vec<i64> {
    let mut b = vec![INITIAL; ACCOUNTS as usize];
    for j in jobs {
        if let Ok(t) = Transfer::decode(&j.body) {
            b[t.from as usize] -= t.amount;
            b[t.to as usize] += t.amount;
        }
    }
    b
}

fn open(name: &str, disks: RepoDisks, mode: ExecMode) -> Arc<Repository> {
    let opts = RepoOptions {
        exec_mode: mode,
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, disks, opts).unwrap();
    let repo = Arc::new(repo);
    for q in [REQ, REPLY] {
        let _ = repo.create_queue_defaults(q);
    }
    bank::seed_accounts(&repo, ACCOUNTS, INITIAL).unwrap();
    repo
}

fn enqueue_jobs(repo: &Repository, jobs: &[Job]) {
    let (h, _) = repo.qm().register(REQ, "loader", false).unwrap();
    for j in jobs {
        let req = Request::new(Rid::new("c1", j.serial), REPLY, j.op, j.body.clone());
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                &req.encode_to_vec(),
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }
}

/// Drain the reply queue in order; panics on an undecodable reply.
fn drain_replies(repo: &Repository) -> Vec<Reply> {
    let (h, _) = repo.qm().register(REPLY, "drain", false).unwrap();
    let mut out = Vec::new();
    while let Ok(elem) = repo.autocommit(|t| {
        repo.qm()
            .dequeue(t.id().raw(), &h, DequeueOptions::default())
    }) {
        out.push(Reply::decode_all(&elem.payload).unwrap());
    }
    out
}

/// Run the locked baseline to completion: one server, `n` Fig 5 iterations.
fn run_locked(repo: &Arc<Repository>, n: u64) {
    let server = Server::new(
        Arc::clone(repo),
        ServerConfig::new("lockstep-srv", REQ),
        bank::single_txn_handler(),
    )
    .unwrap();
    for _ in 0..n {
        assert_ne!(
            server.run_once().unwrap(),
            Served::Idle,
            "locked server went idle with requests outstanding"
        );
    }
}

/// Run a planned pool inline (no threads) until the request queue is dry.
fn run_planned_inline(pool: &PlannedPool, repo: &Repository) {
    let mut idle = 0;
    while idle < 3 {
        if pool.run_epoch().unwrap() == 0 {
            if repo.qm().depth(REQ).unwrap() == 0 {
                idle += 1;
            }
        } else {
            idle = 0;
        }
    }
}

fn assert_clean(repo: &Repository, tag: &str) {
    assert_eq!(repo.qm().depth(REQ).unwrap(), 0, "{tag}: requests left");
    assert_eq!(repo.qm().index_divergence().unwrap(), None, "{tag}");
    for q in [REQ, REPLY] {
        assert_eq!(
            repo.qm().depth(q).unwrap(),
            repo.qm().depth_scan(q).unwrap(),
            "{tag}: depth accounting drifted on {q:?}"
        );
    }
}

/// The tentpole oracle: 16 seeded schedules through both modes, identical
/// reply order and final state. All-plannable workloads (priority order =
/// arrival order = the locked FIFO order) with the epoch size swept 1..=8.
#[test]
fn planned_inline_matches_locked_lockstep() {
    for seed in 0..16u64 {
        let jobs = gen_jobs(seed, 24, true);

        let locked = open("equiv-locked", RepoDisks::new(), ExecMode::Locked);
        enqueue_jobs(&locked, &jobs);
        run_locked(&locked, jobs.len() as u64);

        let planned = open("equiv-planned", RepoDisks::new(), ExecMode::Planned);
        enqueue_jobs(&planned, &jobs);
        let mut cfg = PlannedConfig::new("pl", REQ);
        cfg.batch_max = 1 + (seed as usize % 8);
        let pool = PlannedPool::new(
            Arc::clone(&planned),
            cfg,
            bank::single_txn_handler(),
            bank::transfer_access(),
        )
        .unwrap();
        run_planned_inline(&pool, &planned);

        let (ra, rb) = (drain_replies(&locked), drain_replies(&planned));
        assert_eq!(
            ra.iter()
                .map(|r| (&r.rid, &r.status, &r.body))
                .collect::<Vec<_>>(),
            rb.iter()
                .map(|r| (&r.rid, &r.status, &r.body))
                .collect::<Vec<_>>(),
            "seed {seed}: reply order diverged between modes"
        );
        let model = expected_balances(&jobs);
        for i in 0..ACCOUNTS {
            assert_eq!(bank::balance(&locked, i).unwrap(), model[i as usize]);
            assert_eq!(
                bank::balance(&planned, i).unwrap(),
                model[i as usize],
                "seed {seed}: planned balance diverged on account {i}"
            );
        }
        assert_clean(&locked, "locked");
        assert_clean(&planned, "planned");
        let stats = pool.stats();
        assert_eq!(stats.committed, jobs.len() as u64);
        assert_eq!(stats.misspeculations, 0, "honest access sets never abort");
    }
}

/// Unplannable and malformed requests ride the solo path (after the
/// lock-free tasks of their epoch), so reply *order* may legally differ —
/// the reply multiset and every balance may not.
#[test]
fn mixed_solo_workload_matches_locked_final_state() {
    for seed in 0..8u64 {
        let jobs = gen_jobs(seed, 24, false);

        let locked = open("mixed-locked", RepoDisks::new(), ExecMode::Locked);
        enqueue_jobs(&locked, &jobs);
        run_locked(&locked, jobs.len() as u64);

        let planned = open("mixed-planned", RepoDisks::new(), ExecMode::Planned);
        enqueue_jobs(&planned, &jobs);
        let mut cfg = PlannedConfig::new("pl", REQ);
        cfg.batch_max = 6;
        let pool = PlannedPool::new(
            Arc::clone(&planned),
            cfg,
            bank::single_txn_handler(),
            bank::transfer_access(),
        )
        .unwrap();
        run_planned_inline(&pool, &planned);

        let sorted = |mut v: Vec<Reply>| {
            v.sort_by_key(|r| r.rid.serial);
            v.iter()
                .map(|r| (r.rid.clone(), r.status, r.body.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            sorted(drain_replies(&locked)),
            sorted(drain_replies(&planned)),
            "seed {seed}: reply multiset diverged"
        );
        let model = expected_balances(&jobs);
        for i in 0..ACCOUNTS {
            assert_eq!(bank::balance(&planned, i).unwrap(), model[i as usize]);
        }
        assert!(
            pool.stats().solo > 0,
            "seed {seed}: workload grew no solo tasks"
        );
        assert_clean(&planned, "planned");
    }
}

/// Crashes inside every epoch window: the hook abandons epoch 1 mid-flight
/// (exactly the state a crash at that boundary leaves), the disks lose
/// their volatile bytes, and recovery + a fresh pool must finish the
/// workload exactly-once — each request replied to once, money conserved.
#[test]
fn crash_in_every_epoch_window_preserves_exactly_once() {
    for (wi, window) in [EpochWindow::Plan, EpochWindow::Execute, EpochWindow::Commit]
        .into_iter()
        .enumerate()
    {
        for seed in 0..6u64 {
            let jobs = gen_jobs(seed.wrapping_add(100 * wi as u64), 20, true);
            let disks = RepoDisks::new();
            let repo = open("crashwin", disks.clone(), ExecMode::Planned);
            enqueue_jobs(&repo, &jobs);

            let mut cfg = PlannedConfig::new("pl-i1", REQ);
            cfg.batch_max = 4;
            let pool = PlannedPool::new(
                Arc::clone(&repo),
                cfg,
                bank::single_txn_handler(),
                bank::transfer_access(),
            )
            .unwrap();
            pool.set_epoch_hook(Arc::new(move |epoch, w| epoch == 1 && w == window));
            // Epoch 1 is abandoned at the window; a second epoch would run
            // clean, so crash right here.
            assert_eq!(pool.run_epoch().unwrap(), 0, "hook must abandon epoch 1");
            drop(pool);
            drop(repo);
            disks.crash();

            let opts = RepoOptions {
                exec_mode: ExecMode::Planned,
                ..RepoOptions::default()
            };
            let (repo, _) = Repository::open_with("crashwin", disks, opts).unwrap();
            let repo = Arc::new(repo);
            let mut cfg = PlannedConfig::new("pl-i2", REQ);
            cfg.batch_max = 4;
            let pool = PlannedPool::new(
                Arc::clone(&repo),
                cfg,
                bank::single_txn_handler(),
                bank::transfer_access(),
            )
            .unwrap();
            run_planned_inline(&pool, &repo);

            let mut replies = drain_replies(&repo);
            replies.sort_by_key(|r| r.rid.serial);
            assert_eq!(
                replies.iter().map(|r| r.rid.serial).collect::<Vec<_>>(),
                (1..=jobs.len() as u64).collect::<Vec<_>>(),
                "{window:?} seed {seed}: requests not replied to exactly once"
            );
            assert!(replies.iter().all(|r| r.status == ReplyStatus::Ok));
            let model = expected_balances(&jobs);
            for i in 0..ACCOUNTS {
                assert_eq!(
                    bank::balance(&repo, i).unwrap(),
                    model[i as usize],
                    "{window:?} seed {seed}: balance diverged on account {i}"
                );
            }
            assert_eq!(
                bank::total_money(&repo, ACCOUNTS).unwrap(),
                i64::from(ACCOUNTS) * INITIAL
            );
            assert_clean(&repo, "recovered");
        }
    }
}

/// A 4-worker execute phase reaches the inline mode's final state (order
/// across disjoint keys is scheduling-dependent; state is not).
#[test]
fn worker_pool_matches_inline_final_state() {
    for seed in 0..4u64 {
        let jobs = gen_jobs(seed.wrapping_add(7000), 40, true);

        let inline = open("pool-inline", RepoDisks::new(), ExecMode::Planned);
        enqueue_jobs(&inline, &jobs);
        let mut cfg = PlannedConfig::new("pl", REQ);
        cfg.batch_max = 8;
        let pool = PlannedPool::new(
            Arc::clone(&inline),
            cfg,
            bank::single_txn_handler(),
            bank::transfer_access(),
        )
        .unwrap();
        run_planned_inline(&pool, &inline);

        let pooled = open("pool-workers", RepoDisks::new(), ExecMode::Planned);
        enqueue_jobs(&pooled, &jobs);
        let mut cfg = PlannedConfig::new("plw", REQ);
        cfg.batch_max = 8;
        cfg.workers = 4;
        let pool = PlannedPool::new(
            Arc::clone(&pooled),
            cfg,
            bank::single_txn_handler(),
            bank::transfer_access(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let threads = pool.spawn(Arc::clone(&stop));
        while pooled.qm().depth(REPLY).unwrap() < jobs.len() {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        for t in threads {
            t.join().unwrap();
        }

        let sorted = |mut v: Vec<Reply>| {
            v.sort_by_key(|r| r.rid.serial);
            v.iter()
                .map(|r| (r.rid.clone(), r.status, r.body.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            sorted(drain_replies(&inline)),
            sorted(drain_replies(&pooled))
        );
        let model = expected_balances(&jobs);
        for i in 0..ACCOUNTS {
            assert_eq!(bank::balance(&pooled, i).unwrap(), model[i as usize]);
        }
        assert_clean(&pooled, "pooled");
    }
}

/// An access oracle that deliberately under-declares (only the `from`
/// account): every transfer with `from != to` trips `OutsidePlan` on the
/// credit, aborts, and replans with the widened scope — and the workload
/// still converges to the correct state with the retries on the record.
#[test]
fn misspeculation_replans_and_converges() {
    let jobs: Vec<Job> = (1..=12u64)
        .map(|serial| Job {
            serial,
            op: "transfer",
            body: Transfer {
                from: (serial % u64::from(ACCOUNTS)) as u32,
                to: ((serial + 1) % u64::from(ACCOUNTS)) as u32,
                amount: 100,
            }
            .encode(),
        })
        .collect();
    let repo = open("misspec", RepoDisks::new(), ExecMode::Planned);
    enqueue_jobs(&repo, &jobs);

    let lying_access: rrq_core::planned::AccessFn = Arc::new(|req: &Request| {
        let t = Transfer::decode(&req.body).ok()?;
        Some(vec![LockKey::new(
            bank::BANK_NS,
            bank::account_cell(t.from),
        )])
    });
    let mut cfg = PlannedConfig::new("pl", REQ);
    cfg.batch_max = 4;
    let pool = PlannedPool::new(
        Arc::clone(&repo),
        cfg,
        bank::single_txn_handler(),
        lying_access,
    )
    .unwrap();
    run_planned_inline(&pool, &repo);

    let stats = pool.stats();
    assert!(
        stats.replans >= jobs.len() as u64,
        "every transfer must misspeculate once: {stats:?}"
    );
    assert!(stats.misspeculations >= stats.replans);
    assert_eq!(stats.committed, jobs.len() as u64);
    let replies = drain_replies(&repo);
    assert_eq!(replies.len(), jobs.len());
    let model = expected_balances(&jobs);
    for i in 0..ACCOUNTS {
        assert_eq!(bank::balance(&repo, i).unwrap(), model[i as usize]);
    }
    assert_clean(&repo, "misspec");
}

/// Directed regressions for the `open_with` compatibility matrix: planned
/// execution owns dequeue arbitration, so it cannot share a repository with
/// the flat-combining dispenser (§24) or span shared-nothing partitions
/// (S25, the epoch durability point covers only the home partition).
#[test]
fn planned_mode_rejects_incompatible_options() {
    let combining = RepoOptions {
        exec_mode: ExecMode::Planned,
        dequeue_combining: true,
        ..RepoOptions::default()
    };
    match Repository::open_with("bad-combine", RepoDisks::new(), combining) {
        Err(QmError::IncompatibleOptions(msg)) => {
            assert!(msg.contains("dequeue_combining"), "got: {msg}")
        }
        other => panic!(
            "expected IncompatibleOptions, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    let partitioned = RepoOptions {
        exec_mode: ExecMode::Planned,
        repo_partitions: 2,
        ..RepoOptions::default()
    };
    match Repository::open_with("bad-parts", RepoDisks::new(), partitioned) {
        Err(QmError::IncompatibleOptions(msg)) => {
            assert!(msg.contains("repo_partitions"), "got: {msg}")
        }
        other => panic!(
            "expected IncompatibleOptions, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    }

    // And a pool on a locked repository is a construction error, not a
    // silent fight with the dispensing servers.
    let locked = open("pool-on-locked", RepoDisks::new(), ExecMode::Locked);
    assert!(PlannedPool::new(
        Arc::clone(&locked),
        PlannedConfig::new("pl", REQ),
        bank::single_txn_handler(),
        bank::transfer_access(),
    )
    .is_err());
}
