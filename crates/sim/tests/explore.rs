//! The deterministic fault-schedule explorer, end to end: clean sweeps,
//! digest reproducibility, failure persistence + replay, and shrinking a
//! deliberately injected protocol bug down to a minimal script.

use rrq_core::api::LocalQm;
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::client::ReplyProcessor;
use rrq_core::request::Reply;
use rrq_core::rid::Rid;
use rrq_core::server::{Handler, HandlerOutcome, Server, ServerConfig};
use rrq_qm::repository::Repository;
use rrq_sim::driver::CrashPoint;
use rrq_sim::explorer::{self, run_script, run_sweep, ExplorerConfig, InjectedBug};
use rrq_sim::oracle::ReplyMatcher;
use rrq_sim::schedule::CrashSchedule;
use rrq_sim::script::{FaultEvent, FaultScript, PartitionDirection};
use rrq_sim::shrink::shrink;
use rrq_sim::ClientCrashDriver;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

#[test]
fn quiet_script_is_clean_and_deterministic() {
    let script = FaultScript::quiet(5);
    let cfg = ExplorerConfig::default();
    let a = run_script(&script, &cfg);
    assert_eq!(a.violations, Vec::<String>::new(), "trace:\n{:#?}", a.trace);
    assert_eq!(a.incarnations, 1);
    let b = run_script(&script, &cfg);
    assert_eq!(a.digest, b.digest, "same script, different digests");
}

#[test]
fn all_fault_dimensions_in_one_script_stay_clean_and_replay_identically() {
    use rrq_storage::disk::TornWriteMode;
    let script = FaultScript {
        seed: 0,
        n_requests: 6,
        events: vec![
            FaultEvent::Delay {
                serial: 1,
                millis: 10,
            },
            FaultEvent::ClientCrash {
                serial: 2,
                point: CrashPoint::AfterSend,
            },
            FaultEvent::ServerCrash {
                serial: 3,
                torn: Some(TornWriteMode::Midway),
                torn_logs: 0,
            },
            FaultEvent::Partition {
                serial: 4,
                direction: PartitionDirection::Both,
                ops: 2,
            },
            FaultEvent::ClientCrash {
                serial: 5,
                point: CrashPoint::AfterProcess,
            },
        ],
    };
    let cfg = ExplorerConfig::default();
    let a = run_script(&script, &cfg);
    assert_eq!(a.violations, Vec::<String>::new(), "trace:\n{:#?}", a.trace);
    assert!(
        a.incarnations >= 3,
        "crashes and the cut force incarnations"
    );
    assert_eq!(a.server_crashes, 1);
    let b = run_script(&script, &cfg);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn sweep_of_generated_scripts_has_zero_violations() {
    let report = run_sweep(1, 40, &ExplorerConfig::default());
    let detail: Vec<_> = report
        .failures
        .iter()
        .map(|f| (f.seed, f.outcome.violations.clone()))
        .collect();
    assert!(detail.is_empty(), "violating seeds: {detail:#?}");
    assert_eq!(report.scripts_run, 40);
}

#[test]
fn sweep_digest_is_reproducible_across_runs() {
    let cfg = ExplorerConfig::default();
    let a = run_sweep(500, 8, &cfg);
    let b = run_sweep(500, 8, &cfg);
    assert_eq!(a.digest_of_digests, b.digest_of_digests);
    assert!(a.failures.is_empty() && b.failures.is_empty());
}

#[test]
fn injected_bug_is_caught_persisted_shrunk_and_replayable() {
    use rrq_storage::disk::TornWriteMode;
    let buggy = ExplorerConfig {
        bug: Some(InjectedBug::SkipRereceive),
        ..ExplorerConfig::default()
    };
    // A noisy multi-fault script whose only *real* trigger is the
    // after-receive client crash (the bug skips the rereceive it forces).
    let script = FaultScript {
        seed: 0,
        n_requests: 4,
        events: vec![
            FaultEvent::ServerCrash {
                serial: 1,
                torn: Some(TornWriteMode::Midway),
                torn_logs: 0,
            },
            FaultEvent::Delay {
                serial: 1,
                millis: 15,
            },
            FaultEvent::ClientCrash {
                serial: 2,
                point: CrashPoint::AfterReceive,
            },
        ],
    };
    let outcome = run_script(&script, &buggy);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("never processed")),
        "bug not caught: {:?}",
        outcome.violations
    );

    let report = shrink(&script, &buggy);
    assert!(report.input_failed);
    assert!(
        report.script.events.len() <= 3,
        "shrinker left {} events",
        report.script.events.len()
    );
    assert_eq!(
        report.script.events,
        vec![FaultEvent::ClientCrash {
            serial: 2,
            point: CrashPoint::AfterReceive,
        }],
        "greedy shrink should isolate the one triggering event"
    );
    assert_eq!(report.script.n_requests, 2, "workload trimmed to the fault");

    // The minimal script round-trips through a replayable file: still fails
    // under the bug, clean without it.
    let path = tmp_dir("shrunk").join("min.rrqs");
    report.script.write_to(&path).unwrap();
    let (decoded, replayed) = explorer::replay_file(&path, &buggy).unwrap();
    assert_eq!(decoded, report.script);
    assert!(replayed.failed(), "replay must reproduce the bug");
    let (_, fixed) = explorer::replay_file(&path, &ExplorerConfig::default()).unwrap();
    assert_eq!(fixed.violations, Vec::<String>::new());
}

#[test]
fn failing_sweep_persists_a_replayable_script_file() {
    // Find a generated script that trips the injected bug (a client crash
    // right after a receive), then sweep exactly that seed.
    let seed = (0..5000)
        .find(|s| {
            FaultScript::generate(*s).events.iter().any(|e| {
                matches!(
                    e,
                    FaultEvent::ClientCrash {
                        point: CrashPoint::AfterReceive,
                        ..
                    }
                )
            })
        })
        .expect("no seed with an after-receive crash in range");
    let cfg = ExplorerConfig {
        bug: Some(InjectedBug::SkipRereceive),
        out_dir: Some(tmp_dir("sweep-fail")),
        ..ExplorerConfig::default()
    };
    let report = run_sweep(seed, 1, &cfg);
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    let path = failure.script_path.as_ref().expect("script persisted");
    let (script, outcome) = explorer::replay_file(path, &cfg).unwrap();
    assert_eq!(script, failure.script);
    assert!(outcome.failed());
    assert_eq!(outcome.digest, failure.outcome.digest, "replay is exact");
}

#[test]
fn checked_in_minimal_script_reproduces_the_seeded_bug() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/min-skip-rereceive.rrqs");
    let buggy = ExplorerConfig {
        bug: Some(InjectedBug::SkipRereceive),
        ..ExplorerConfig::default()
    };
    let (script, outcome) = explorer::replay_file(&path, &buggy).unwrap();
    assert_eq!(script.events.len(), 1);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("c1/2") && v.contains("never processed")),
        "expected the skipped reply to surface: {:?}",
        outcome.violations
    );
    let (_, fixed) = explorer::replay_file(&path, &ExplorerConfig::default()).unwrap();
    assert_eq!(
        fixed.violations,
        Vec::<String>::new(),
        "correct resync handles the same script"
    );
}

#[test]
fn double_count_bug_is_caught_by_metrics_oracle_and_shrinks() {
    // The bug doubles a counter, nothing else: every client-visible oracle
    // stays silent, and only metrics conservation (law A) can catch it.
    let buggy = ExplorerConfig {
        bug: Some(InjectedBug::DoubleCountEnqueue),
        ..ExplorerConfig::default()
    };
    let script = FaultScript {
        seed: 7,
        n_requests: 3,
        events: vec![FaultEvent::Partition {
            serial: 2,
            direction: PartitionDirection::Both,
            ops: 1,
        }],
    };
    let outcome = run_script(&script, &buggy);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("metrics law A")),
        "double-count not caught: {:?}",
        outcome.violations
    );
    assert!(
        outcome.violations.iter().all(|v| v.contains("metrics law")),
        "only the metrics oracle should fire: {:?}",
        outcome.violations
    );

    // Any single request trips it, so the shrinker should strip the (noise)
    // partition and trim the workload to one request.
    let report = shrink(&script, &buggy);
    assert!(report.input_failed);
    assert_eq!(report.script.events, Vec::new(), "partition was pure noise");
    assert_eq!(report.script.n_requests, 1);

    // Determinism: the law-A counts in the violation text replay exactly.
    let again = run_script(&script, &buggy);
    assert_eq!(outcome.digest, again.digest);
    assert_eq!(outcome.violations, again.violations);
}

#[test]
fn checked_in_minimal_double_count_script_reproduces_the_bug() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/min-double-count.rrqs");
    let buggy = ExplorerConfig {
        bug: Some(InjectedBug::DoubleCountEnqueue),
        ..ExplorerConfig::default()
    };
    let (script, outcome) = explorer::replay_file(&path, &buggy).unwrap();
    assert_eq!(script.events.len(), 0);
    assert_eq!(script.n_requests, 1);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.contains("metrics law A")),
        "expected a law-A conservation violation: {:?}",
        outcome.violations
    );
    let (_, fixed) = explorer::replay_file(&path, &ExplorerConfig::default()).unwrap();
    assert_eq!(
        fixed.violations,
        Vec::<String>::new(),
        "without the bug the same script satisfies every law"
    );
}

/// A non-testable device: it cannot answer "did I process this already?",
/// so resynchronization after an after-process crash must re-process —
/// at-least-once, surfacing in [`ReplyMatcher::duplicated`].
struct NaiveProcessor {
    matcher: Arc<ReplyMatcher>,
}

impl ReplyProcessor for NaiveProcessor {
    fn checkpoint(&mut self) -> Vec<u8> {
        Vec::new()
    }
    fn process(&mut self, rid: &Rid, reply: &Reply) {
        self.matcher.record(rid, reply);
    }
    fn already_processed(&mut self, _rid: &Rid, _ckpt: Option<&[u8]>) -> bool {
        false
    }
}

#[test]
fn duplicated_reply_processing_is_reported_for_non_testable_devices() {
    // Own observer session: the clerk resubmission path emits protocol
    // events, which must not leak into a concurrently running sweep.
    let (_checker, _session) = rrq_check::protocol::Conformance::install();

    let repo = Arc::new(Repository::create("dup-matcher").unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.cdup").unwrap();
    let handler: Handler = Arc::new(|_ctx, req| Ok(HandlerOutcome::Reply(req.body.clone())));
    let server = Server::new(
        Arc::clone(&repo),
        ServerConfig::new("s-dup", "req"),
        handler,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = server.spawn(Arc::clone(&stop));

    let matcher = Arc::new(ReplyMatcher::new());
    let mut processor = NaiveProcessor {
        matcher: Arc::clone(&matcher),
    };
    let make_clerk = {
        let repo = Arc::clone(&repo);
        move || {
            let mut cfg = ClerkConfig::new("cdup", "req");
            cfg.receive_block = Duration::from_secs(10);
            Clerk::new(Arc::new(LocalQm::new(Arc::clone(&repo))), cfg)
        }
    };
    let driver = ClientCrashDriver::new(make_clerk, "echo");
    let schedule = CrashSchedule::single(2, CrashPoint::AfterProcess);
    let report = driver
        .run(3, |s| schedule.get(s), |s| vec![s as u8], &mut processor)
        .unwrap();
    stop.store(true, Ordering::Relaxed);
    handle.join().unwrap();

    assert_eq!(report.incarnations, 2);
    assert_eq!(report.resync_reprocessed, 1, "rereceive path taken");
    // The crash-then-rereceive resubmission processed serial 2's reply twice
    // — exactly what `duplicated` exists to report.
    assert_eq!(
        matcher.duplicated(),
        vec![(Rid::new("cdup", 2), 2)],
        "at-least-once overshoot must be visible"
    );
    assert!(matcher.mismatches().is_empty());
    assert!(matcher
        .missing(&(1..=3).map(|s| Rid::new("cdup", s)).collect::<Vec<_>>())
        .is_empty());
}
