//! Repository-level recovery equivalence: `wal_partitions = 1` vs `4`,
//! driven by explorer-generated crash schedules.
//!
//! `crates/storage/tests/recovery_equiv.rs` pins the property at the
//! key-value layer; this file pins it through the queue manager. Two
//! repositories run the same deterministic workload in lockstep — enqueues
//! with mixed priorities, committed and aborted dequeues, element kills —
//! one over the monolithic log, one over four shard logs. Every
//! `ServerCrash` event in the generated script crashes *both* (the
//! partitioned one honoring the script's per-log torn mask), and after each
//! recovery the two queue states must be identical: same per-queue depths,
//! same index snapshots (element keys and eids), and each index internally
//! equal to a fresh storage scan.

use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_sim::script::{FaultEvent, FaultScript};
use rrq_workload::arrivals::SplitMix;

const QUEUES: [&str; 3] = ["req", "back", "tight"];

fn create_queues(repo: &Repository) {
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 3;
    let mut back = QueueMeta::with_defaults("back");
    back.requeue_at_back_on_abort = true;
    let mut tight = QueueMeta::with_defaults("tight");
    tight.retry_limit = 1;
    for meta in [req, back, tight] {
        let _ = repo.qm().create_queue(meta);
    }
}

fn opts(partitions: usize) -> RepoOptions {
    RepoOptions {
        wal_partitions: partitions,
        ..RepoOptions::default()
    }
}

/// One deterministic workload step; must be called with identical rng state
/// and repo state on both sides.
fn step(repo: &Repository, rng: &mut SplitMix, serial: u64) {
    let queue = QUEUES[(rng.next_u64() % QUEUES.len() as u64) as usize];
    let (h, _) = repo.qm().register(queue, "driver", false).unwrap();
    match rng.next_u64() % 5 {
        0 | 1 => {
            let n = 1 + rng.next_u64() % 3;
            for i in 0..n {
                let prio = (rng.next_u64() % 3) as u8;
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        format!("payload-{serial}-{i}").as_bytes(),
                        EnqueueOptions {
                            priority: prio,
                            ..EnqueueOptions::default()
                        },
                    )
                })
                .unwrap();
            }
        }
        2 => {
            let _ = repo.autocommit(|t| {
                repo.qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            });
        }
        3 => {
            if let Ok(txn) = repo.begin() {
                let _ = repo
                    .qm()
                    .dequeue(txn.id().raw(), &h, DequeueOptions::default());
                let _ = txn.abort();
            }
        }
        _ => {
            if let Some((_, entries)) = repo
                .qm()
                .index_snapshot()
                .into_iter()
                .find(|(q, _)| q == queue)
            {
                if let Some((_, eid)) = entries.first() {
                    let _ = repo.qm().kill_element(*eid);
                }
            }
        }
    }
}

/// The two repositories must be indistinguishable, and each internally
/// consistent with its own storage.
fn assert_pair_equivalent(mono: &Repository, part: &Repository, ctx: &str) {
    for (label, repo) in [("mono", mono), ("part", part)] {
        assert_eq!(
            repo.qm().index_divergence().unwrap(),
            None,
            "{ctx}: {label} index diverged from its storage"
        );
        for q in QUEUES {
            assert_eq!(
                repo.qm().depth(q).unwrap(),
                repo.qm().depth_scan(q).unwrap(),
                "{ctx}: {label} depth mismatch on {q:?}"
            );
        }
    }
    assert_eq!(
        mono.qm().index_snapshot(),
        part.qm().index_snapshot(),
        "{ctx}: queue indexes diverged between partition counts"
    );
}

fn run_pair(seed: u64) {
    let script = FaultScript::generate(seed);
    let crashes: Vec<FaultEvent> = script
        .events
        .iter()
        .filter(|e| matches!(e, FaultEvent::ServerCrash { .. }))
        .copied()
        .collect();

    let disks_m = RepoDisks::new();
    let disks_p = RepoDisks::new();
    let mut mono = Repository::open_with("eq-mono", disks_m.clone(), opts(1))
        .unwrap()
        .0;
    let mut part = Repository::open_with("eq-part", disks_p.clone(), opts(4))
        .unwrap()
        .0;
    create_queues(&mono);
    create_queues(&part);
    // Identical rng streams: every step consults only its own stream and its
    // own (identical) repository state.
    let mut rng_m = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut rng_p = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);

    for serial in 1..=script.n_requests {
        step(&mono, &mut rng_m, serial);
        step(&part, &mut rng_p, serial);
        for ev in &crashes {
            let FaultEvent::ServerCrash {
                serial: es,
                torn,
                torn_logs,
            } = *ev
            else {
                continue;
            };
            if es == serial {
                drop(mono);
                drop(part);
                // The monolithic side tears its one log whenever the script
                // tears anything; the partitioned side honors the mask.
                disks_m.crash_torn_logs(torn, 0);
                disks_p.crash_torn_logs(torn, torn_logs);
                mono = Repository::open_with("eq-mono", disks_m.clone(), opts(1))
                    .unwrap()
                    .0;
                part = Repository::open_with("eq-part", disks_p.clone(), opts(4))
                    .unwrap()
                    .0;
                create_queues(&mono);
                create_queues(&part);
                assert_pair_equivalent(
                    &mono,
                    &part,
                    &format!("seed {seed} crash at {serial} ({torn:?}/{torn_logs:#04x})"),
                );
            }
        }
        assert_pair_equivalent(&mono, &part, &format!("seed {seed} serial {serial}"));
    }

    // Final clean restart regardless of the script's events.
    drop(mono);
    drop(part);
    disks_m.crash();
    disks_p.crash();
    let mono = Repository::open_with("eq-mono", disks_m, opts(1))
        .unwrap()
        .0;
    let part = Repository::open_with("eq-part", disks_p, opts(4))
        .unwrap()
        .0;
    assert_pair_equivalent(&mono, &part, &format!("seed {seed} final restart"));
}

#[test]
fn partitioned_repository_matches_monolithic_across_crash_schedules() {
    for seed in 0..20 {
        run_pair(seed);
    }
}

/// Directed: tear exactly one shard log while a dequeue is mid-flight on
/// each queue; the rebuilt state must still match the monolithic twin.
#[test]
fn single_log_tear_with_inflight_dequeues_stays_equivalent() {
    use rrq_storage::disk::TornWriteMode;
    for mask in [0b0001u8, 0b0100, 0b1010] {
        let disks_m = RepoDisks::new();
        let disks_p = RepoDisks::new();
        let setup = |disks: &RepoDisks, name: &str, parts: usize| {
            let repo = Repository::open_with(name, disks.clone(), opts(parts))
                .unwrap()
                .0;
            create_queues(&repo);
            let (h, _) = repo.qm().register("req", "c", false).unwrap();
            for k in 0..6u64 {
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        format!("e{k}").as_bytes(),
                        EnqueueOptions::default(),
                    )
                })
                .unwrap();
            }
            let txn = repo.begin().unwrap();
            let _ = repo
                .qm()
                .dequeue(txn.id().raw(), &h, DequeueOptions::default());
            std::mem::forget(txn);
            drop(repo);
        };
        setup(&disks_m, "tear-mono", 1);
        setup(&disks_p, "tear-part", 4);
        disks_m.crash_torn_logs(Some(TornWriteMode::Midway), 0);
        disks_p.crash_torn_logs(Some(TornWriteMode::Midway), mask);
        let mono = Repository::open_with("tear-mono", disks_m, opts(1))
            .unwrap()
            .0;
        let part = Repository::open_with("tear-part", disks_p, opts(4))
            .unwrap()
            .0;
        assert_pair_equivalent(&mono, &part, &format!("mask {mask:#06b}"));
        for repo in [&mono, &part] {
            assert_eq!(
                repo.qm().depth("req").unwrap(),
                6,
                "uncommitted dequeue rolled back (mask {mask:#06b})"
            );
        }
    }
}
