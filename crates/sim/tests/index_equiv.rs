//! Index-vs-storage equivalence under explorer-generated crash schedules.
//!
//! PR 3's ready index is an in-memory mirror of the committed element
//! keyspace; a crash throws the mirror away and recovery rebuilds it from a
//! storage scan. The property this file checks: **after any crash schedule
//! drawn from the explorer's script generator, the rebuilt index equals a
//! fresh full scan** — same queues, same element keys in the same order,
//! same eids — and every indexed element is unlocked (dequeue locks are
//! in-memory, so a restart must leave none behind).
//!
//! The workload is a deterministic function of the script seed: enqueues
//! with mixed priorities across queues with different abort policies
//! (default error-queue moves, requeue-at-back, tight retry limits),
//! committed dequeues, aborted dequeues, and kills — every path that
//! mutates the index. The crash points and torn-WAL modes come from the
//! generated script's `ServerCrash` events, exactly as the explorer would
//! inject them.

use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, Repository};
use rrq_sim::script::{FaultEvent, FaultScript};
use rrq_workload::arrivals::SplitMix;

const QUEUES: [&str; 3] = ["req", "back", "tight"];

fn create_queues(repo: &Repository) {
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 3;
    let mut back = QueueMeta::with_defaults("back");
    back.requeue_at_back_on_abort = true;
    let mut tight = QueueMeta::with_defaults("tight");
    tight.retry_limit = 1; // first abort moves straight to the error queue
    for meta in [req, back, tight] {
        let _ = repo.qm().create_queue(meta);
    }
}

/// Assert the rebuilt (or live) index matches a fresh storage scan and that
/// no indexed element is left locked.
fn assert_equivalent(repo: &Repository, ctx: &str) {
    let divergence = repo.qm().index_divergence().unwrap();
    assert_eq!(divergence, None, "{ctx}: index diverged from storage");
    for q in QUEUES {
        let by_index = repo.qm().depth(q).unwrap();
        let by_scan = repo.qm().depth_scan(q).unwrap();
        assert_eq!(by_index, by_scan, "{ctx}: depth mismatch on {q:?}");
    }
    // Every indexed element must be free for the taking: dequeue locks are
    // volatile, so nothing may survive a restart, and at a quiescent point
    // nothing should be held either.
    for (queue, entries) in repo.qm().index_snapshot() {
        for (ekey, eid) in entries {
            assert!(
                repo.qm().element_lock_free(&queue, &ekey),
                "{ctx}: element {} in {queue:?} left locked",
                eid.raw()
            );
        }
    }
}

/// One deterministic workload step against `repo`.
fn step(repo: &Repository, rng: &mut SplitMix, serial: u64) {
    let queue = QUEUES[(rng.next_u64() % QUEUES.len() as u64) as usize];
    let (h, _) = repo.qm().register(queue, "driver", false).unwrap();
    match rng.next_u64() % 5 {
        // Enqueue a couple of elements with mixed priorities.
        0 | 1 => {
            let n = 1 + rng.next_u64() % 3;
            for i in 0..n {
                let prio = (rng.next_u64() % 3) as u8;
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        format!("payload-{serial}-{i}").as_bytes(),
                        EnqueueOptions {
                            priority: prio,
                            ..EnqueueOptions::default()
                        },
                    )
                })
                .unwrap();
            }
        }
        // Committed dequeue.
        2 => {
            let _ = repo.autocommit(|t| {
                repo.qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            });
        }
        // Aborted dequeue: exercises return / requeue-at-back / error-queue
        // moves depending on the queue's policy and the element's history.
        3 => {
            if let Ok(txn) = repo.begin() {
                let _ = repo
                    .qm()
                    .dequeue(txn.id().raw(), &h, DequeueOptions::default());
                let _ = txn.abort();
            }
        }
        // Kill the element at the queue's head, if any.
        _ => {
            if let Some((_, entries)) = repo
                .qm()
                .index_snapshot()
                .into_iter()
                .find(|(q, _)| q == queue)
            {
                if let Some((_, eid)) = entries.first() {
                    let _ = repo.qm().kill_element(*eid);
                }
            }
        }
    }
}

/// The property, over one generated script.
fn run_schedule(seed: u64) {
    let script = FaultScript::generate(seed);
    let crashes: Vec<&FaultEvent> = script
        .events
        .iter()
        .filter(|e| matches!(e, FaultEvent::ServerCrash { .. }))
        .collect();

    let disks = RepoDisks::new();
    let mut repo = {
        let (r, _) = Repository::open("equiv", disks.clone()).unwrap();
        r
    };
    create_queues(&repo);
    let mut rng = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);

    for serial in 1..=script.n_requests {
        step(&repo, &mut rng, serial);
        for ev in &crashes {
            let FaultEvent::ServerCrash {
                serial: es, torn, ..
            } = ev
            else {
                continue;
            };
            if *es == serial {
                drop(repo);
                disks.crash_with(*torn);
                let (r, _) = Repository::open("equiv", disks.clone()).unwrap();
                repo = r;
                create_queues(&repo); // queues may predate a lost commit
                assert_equivalent(&repo, &format!("seed {seed} after crash at {serial}"));
            }
        }
        assert_equivalent(&repo, &format!("seed {seed} after serial {serial}"));
    }

    // Final restart even if the script had no server crash: the rebuild
    // path must agree with the scan regardless.
    drop(repo);
    disks.crash();
    let (repo, _) = Repository::open("equiv", disks).unwrap();
    assert_equivalent(&repo, &format!("seed {seed} final restart"));
}

#[test]
fn rebuilt_index_matches_scan_across_generated_crash_schedules() {
    for seed in 0..40 {
        run_schedule(seed);
    }
}

/// PR 5 regression for the per-queue ready lists: crash the server while a
/// dequeue is in flight on each of two distinct queues at once, then check
/// every rebuilt per-queue index against a fresh scan. With the index now
/// locked per queue, recovery must still see one coherent whole — both
/// in-flight dequeues rolled back, no element left locked on either queue.
#[test]
fn crash_mid_dequeue_on_two_queues_rebuilds_each_queue_index() {
    let disks = RepoDisks::new();
    {
        let (repo, _) = Repository::open("two-q", disks.clone()).unwrap();
        create_queues(&repo);
        let (hr, _) = repo.qm().register("req", "c", false).unwrap();
        let (hb, _) = repo.qm().register("back", "c", false).unwrap();
        for k in 0..4u64 {
            repo.autocommit(|t| {
                let txn = t.id().raw();
                repo.qm().enqueue(
                    txn,
                    &hr,
                    format!("r{k}").as_bytes(),
                    EnqueueOptions::default(),
                )?;
                repo.qm().enqueue(
                    txn,
                    &hb,
                    format!("b{k}").as_bytes(),
                    EnqueueOptions::default(),
                )
            })
            .unwrap();
        }
        // One dequeue mid-flight per queue, in two separate transactions,
        // both unresolved at crash time.
        let t1 = repo.begin().unwrap();
        repo.qm()
            .dequeue(t1.id().raw(), &hr, DequeueOptions::default())
            .unwrap();
        let t2 = repo.begin().unwrap();
        repo.qm()
            .dequeue(t2.id().raw(), &hb, DequeueOptions::default())
            .unwrap();
        std::mem::forget(t1);
        std::mem::forget(t2);
        disks.crash();
    }
    let (repo, _) = Repository::open("two-q", disks).unwrap();
    assert_equivalent(&repo, "two-queue mid-dequeue crash");
    for q in ["req", "back"] {
        assert_eq!(
            repo.qm().depth(q).unwrap(),
            4,
            "in-flight dequeue on {q:?} rolled back on restart"
        );
    }
    // Both queues must be fully servable after the rebuild.
    let (hr, _) = repo.qm().register("req", "s", false).unwrap();
    let (hb, _) = repo.qm().register("back", "s", false).unwrap();
    for h in [hr, hb] {
        for _ in 0..4 {
            repo.autocommit(|t| {
                repo.qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            })
            .unwrap();
        }
    }
    assert_equivalent(&repo, "two-queue drain");
}

#[test]
fn torn_tail_modes_each_rebuild_equivalently() {
    use rrq_storage::disk::TornWriteMode;
    for (i, mode) in [
        None,
        Some(TornWriteMode::Midway),
        Some(TornWriteMode::FullLengthCorrupt),
        Some(TornWriteMode::HeaderOnly),
    ]
    .into_iter()
    .enumerate()
    {
        let disks = RepoDisks::new();
        {
            let (repo, _) = Repository::open("torn", disks.clone()).unwrap();
            create_queues(&repo);
            let (h, _) = repo.qm().register("req", "c", false).unwrap();
            for k in 0..6u64 {
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        format!("e{k}").as_bytes(),
                        EnqueueOptions {
                            priority: (k % 3) as u8,
                            ..EnqueueOptions::default()
                        },
                    )
                })
                .unwrap();
            }
            // One dequeue left uncommitted at crash time: recovery must not
            // let it leak out of (or into) the index.
            let txn = repo.begin().unwrap();
            let _ = repo
                .qm()
                .dequeue(txn.id().raw(), &h, DequeueOptions::default());
            std::mem::forget(txn);
            disks.crash_with(mode);
        }
        let (repo, _) = Repository::open("torn", disks).unwrap();
        assert_equivalent(&repo, &format!("torn mode #{i}"));
        assert_eq!(
            repo.qm().depth("req").unwrap(),
            6,
            "uncommitted dequeue rolled back on restart (mode #{i})"
        );
    }
}
