//! Combining-vs-baseline equivalence for the flat-combining dequeue front
//! end (DESIGN.md §24), the PR 5 `shard_equiv` pattern: the dispenser is a
//! pure coordination layer, so running the *same* seeded workload with
//! `dequeue_combining` on and off must produce the same committed history —
//! same dequeue order, same final index snapshot, same depth accounting —
//! and a concurrent drain through the combiner must hand every element to
//! exactly one consumer.
//!
//! The crash-mid-combine case rides along as a checked-in `.rrqs` script
//! replayed with combining enabled: the server dies while dequeuers are in
//! flight through the dispenser (whole-process crash = the combiner "dies
//! holding the latch"; the dispenser is volatile, so recovery starts from an
//! empty publication list) and the full oracle battery must stay green.

use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_sim::explorer::{self, ExplorerConfig};
use rrq_workload::arrivals::SplitMix;
use std::path::PathBuf;
use std::sync::Arc;

const QUEUES: [&str; 3] = ["req", "back", "tight"];

fn create_queues(repo: &Repository) {
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 3;
    let mut back = QueueMeta::with_defaults("back");
    back.requeue_at_back_on_abort = true;
    let mut tight = QueueMeta::with_defaults("tight");
    tight.retry_limit = 1;
    for meta in [req, back, tight] {
        let _ = repo.qm().create_queue(meta);
    }
}

fn open(name: &str, combining: bool) -> Repository {
    let opts = RepoOptions {
        dequeue_combining: combining,
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with(name, RepoDisks::new(), opts).unwrap();
    create_queues(&repo);
    repo
}

/// One deterministic workload step; appends every committed dequeue's
/// payload to `taken` so the two sides' dequeue *order* can be compared.
fn step(repo: &Repository, rng: &mut SplitMix, serial: u64, taken: &mut Vec<Vec<u8>>) {
    let queue = QUEUES[(rng.next_u64() % QUEUES.len() as u64) as usize];
    let (h, _) = repo.qm().register(queue, "driver", false).unwrap();
    match rng.next_u64() % 5 {
        0 | 1 => {
            let n = 1 + rng.next_u64() % 3;
            for i in 0..n {
                let prio = (rng.next_u64() % 3) as u8;
                repo.autocommit(|t| {
                    repo.qm().enqueue(
                        t.id().raw(),
                        &h,
                        format!("payload-{serial}-{i}").as_bytes(),
                        EnqueueOptions {
                            priority: prio,
                            ..EnqueueOptions::default()
                        },
                    )
                })
                .unwrap();
            }
        }
        2 => {
            if let Ok(elem) = repo.autocommit(|t| {
                repo.qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            }) {
                taken.push(elem.payload.clone());
            }
        }
        3 => {
            if let Ok(txn) = repo.begin() {
                let _ = repo
                    .qm()
                    .dequeue(txn.id().raw(), &h, DequeueOptions::default());
                let _ = txn.abort();
            }
        }
        _ => {
            if let Some((_, entries)) = repo
                .qm()
                .index_snapshot()
                .into_iter()
                .find(|(q, _)| q == queue)
            {
                if let Some((_, eid)) = entries.first() {
                    let _ = repo.qm().kill_element(*eid);
                }
            }
        }
    }
}

/// Same seed, both modes: identical dequeue order and identical final state.
#[test]
fn combining_on_and_off_produce_the_same_history_and_final_state() {
    for seed in 0..25u64 {
        let baseline = open("comb-equiv-off", false);
        let combined = open("comb-equiv-on", true);
        assert!(combined.qm().dequeue_combining());
        assert!(!baseline.qm().dequeue_combining());

        let mut rng_a = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut rng_b = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let (mut taken_a, mut taken_b) = (Vec::new(), Vec::new());
        for serial in 1..=60 {
            step(&baseline, &mut rng_a, serial, &mut taken_a);
            step(&combined, &mut rng_b, serial, &mut taken_b);
        }

        assert_eq!(
            taken_a, taken_b,
            "seed {seed}: dequeue order diverged between modes"
        );
        assert_eq!(
            baseline.qm().index_snapshot(),
            combined.qm().index_snapshot(),
            "seed {seed}: final ready-index snapshots diverged"
        );
        for q in QUEUES {
            assert_eq!(
                baseline.qm().depth(q).unwrap(),
                combined.qm().depth(q).unwrap(),
                "seed {seed}: depth diverged on {q:?}"
            );
        }
        for repo in [&baseline, &combined] {
            assert_eq!(repo.qm().index_divergence().unwrap(), None);
            for q in QUEUES {
                assert_eq!(
                    repo.qm().depth(q).unwrap(),
                    repo.qm().depth_scan(q).unwrap(),
                    "seed {seed}: depth accounting drifted on {q:?}"
                );
            }
        }
    }
}

/// Eight dequeuers drain one hot queue through the combiner: every element
/// goes to exactly one consumer, nothing is lost, and the index ends clean.
#[test]
fn concurrent_drain_through_the_combiner_is_exactly_once() {
    const ELEMENTS: u64 = 400;
    const DEQUEUERS: usize = 8;
    let opts = RepoOptions {
        dequeue_combining: true,
        ..RepoOptions::default()
    };
    let (repo, _) = Repository::open_with("comb-drain", RepoDisks::new(), opts).unwrap();
    let repo = Arc::new(repo);
    repo.qm()
        .create_queue(QueueMeta::with_defaults("hot"))
        .unwrap();
    let (h, _) = repo.qm().register("hot", "loader", false).unwrap();
    for k in 0..ELEMENTS {
        repo.autocommit(|t| {
            repo.qm().enqueue(
                t.id().raw(),
                &h,
                format!("{k}").as_bytes(),
                EnqueueOptions::default(),
            )
        })
        .unwrap();
    }

    let mut threads = Vec::new();
    for d in 0..DEQUEUERS {
        let repo = Arc::clone(&repo);
        threads.push(std::thread::spawn(move || {
            let (h, _) = repo.qm().register("hot", &format!("d{d}"), false).unwrap();
            let mut got = Vec::new();
            // Drain until the queue reports dry.
            while let Ok(elem) = repo.autocommit(|t| {
                repo.qm()
                    .dequeue(t.id().raw(), &h, DequeueOptions::default())
            }) {
                got.push(elem.payload);
            }
            got
        }));
    }
    let mut all: Vec<Vec<u8>> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "an element was handed to two dequeuers");
    assert_eq!(n as u64, ELEMENTS, "an element was lost in combining");
    assert_eq!(repo.qm().depth("hot").unwrap(), 0);
    assert_eq!(repo.qm().index_divergence().unwrap(), None);
}

/// The checked-in crash-mid-combine script: three server crashes (one clean,
/// two with torn WAL tails) while combining-enabled dequeuers are in flight.
/// Recovery rebuilds the index, the dispenser restarts empty, and the whole
/// oracle battery (exactly-once effects, reply matching, money conservation,
/// metrics conservation) must stay green.
#[test]
fn checked_in_crash_mid_combine_script_stays_green_with_combining_on() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/crash-mid-combine.rrqs");
    let cfg = ExplorerConfig {
        dequeue_combining: true,
        ..ExplorerConfig::default()
    };
    let (script, outcome) = explorer::replay_file(&path, &cfg).unwrap();
    assert_eq!(script.events.len(), 3, "script should carry three crashes");
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "oracle battery must stay green across crash-mid-combine; trace:\n{:#?}",
        outcome.trace
    );
    // Same script with combining off: identical oracle verdict (the digest
    // may differ — timing-dependent retries — but correctness must not).
    let (_, baseline) = explorer::replay_file(&path, &ExplorerConfig::default()).unwrap();
    assert_eq!(baseline.violations, Vec::<String>::new());
}
