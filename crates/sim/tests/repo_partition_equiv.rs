//! Shared-nothing partition equivalence: `repo_partitions = 1` vs `4`.
//!
//! Two layers pin DESIGN.md S25's "partitioning is invisible" claim:
//!
//! 1. **Repository lockstep.** Two repositories — one monolithic, one split
//!    into four shared-nothing partitions — run the same deterministic
//!    routed workload (mixed-priority enqueues, committed and aborted
//!    dequeues, element kills) over queues that provably span several
//!    partitions. After every step, and after every scripted crash (whole
//!    node on the monolithic side, a single partition's devices on the
//!    partitioned side), the two must agree on per-queue depths, each index
//!    must match a fresh storage scan, and a final drain must return the
//!    same payloads in the same order. Element *keys* are deliberately not
//!    compared: eids carry the partition epoch band, so keys differ by
//!    construction while the logical queue content may not.
//!
//! 2. **Explorer lockstep.** The same generated fault scripts run through
//!    the full clerk↔RPC↔server stack at one and at four partitions; the
//!    oracle battery (exactly-once ledger, reply matching, money
//!    conservation, balances vs model, metrics laws) must stay silent in
//!    both, and the client must observe the same replies — asserted via the
//!    shared balance model, which both runs must hit exactly.

use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_sim::explorer::{run_script, ExplorerConfig};
use rrq_sim::script::{FaultEvent, FaultScript};
use rrq_workload::arrivals::SplitMix;
use std::collections::BTreeMap;

/// Spans partitions 3, 2, 3, 1 at four partitions (asserted below) — the
/// lockstep workload genuinely exercises routing, not one lucky home.
const QUEUES: [&str; 4] = ["req", "back", "tight", "delta"];

fn create_queues(repo: &Repository) {
    let mut req = QueueMeta::with_defaults("req");
    req.retry_limit = 3;
    let mut back = QueueMeta::with_defaults("back");
    back.requeue_at_back_on_abort = true;
    let mut tight = QueueMeta::with_defaults("tight");
    tight.retry_limit = 1;
    let delta = QueueMeta::with_defaults("delta");
    for meta in [req, back, tight, delta] {
        let _ = repo.qm_for(&meta.name.clone()).create_queue(meta);
    }
}

fn opts(partitions: usize) -> RepoOptions {
    RepoOptions {
        repo_partitions: partitions,
        ..RepoOptions::default()
    }
}

/// One deterministic workload step, routed to the owning partition; must be
/// called with identical rng state and repo state on both sides.
fn step(repo: &Repository, rng: &mut SplitMix, serial: u64) {
    let queue = QUEUES[(rng.next_u64() % QUEUES.len() as u64) as usize];
    let qm = repo.qm_for(queue);
    let (h, _) = qm.register(queue, "driver", false).unwrap();
    match rng.next_u64() % 5 {
        0 | 1 => {
            let n = 1 + rng.next_u64() % 3;
            for i in 0..n {
                let prio = (rng.next_u64() % 3) as u8;
                repo.autocommit_on(queue, |t| {
                    qm.enqueue(
                        t.id().raw(),
                        &h,
                        format!("payload-{serial}-{i}").as_bytes(),
                        EnqueueOptions {
                            priority: prio,
                            ..EnqueueOptions::default()
                        },
                    )
                })
                .unwrap();
            }
        }
        2 => {
            let _ = repo.autocommit_on(queue, |t| {
                qm.dequeue(t.id().raw(), &h, DequeueOptions::default())
            });
        }
        3 => {
            if let Ok((txn, _)) = repo.begin_on(queue) {
                let _ = qm.dequeue(txn.id().raw(), &h, DequeueOptions::default());
                let _ = txn.abort();
            }
        }
        _ => {
            if let Some((_, entries)) = qm.index_snapshot().into_iter().find(|(q, _)| q == queue) {
                if let Some((_, eid)) = entries.first() {
                    let _ = qm.kill_element(*eid);
                }
            }
        }
    }
}

/// The two repositories must be logically indistinguishable, and each
/// internally consistent with its own storage.
fn assert_pair_equivalent(mono: &Repository, part: &Repository, ctx: &str) {
    for (label, repo) in [("mono", mono), ("part", part)] {
        for p in 0..repo.partitions() {
            assert_eq!(
                repo.qm_at(p).index_divergence().unwrap(),
                None,
                "{ctx}: {label} p{p} index diverged from its storage"
            );
        }
        for q in QUEUES {
            assert_eq!(
                repo.qm_for(q).depth(q).unwrap(),
                repo.qm_for(q).depth_scan(q).unwrap(),
                "{ctx}: {label} depth mismatch on {q:?}"
            );
        }
    }
    for q in QUEUES {
        assert_eq!(
            mono.qm_for(q).depth(q).unwrap(),
            part.qm_for(q).depth(q).unwrap(),
            "{ctx}: depth of {q:?} diverged between partition counts"
        );
    }
}

/// Drain every queue on both repositories and compare payload order — the
/// strongest observable-equivalence check that survives eid banding.
fn assert_drains_equal(mono: &Repository, part: &Repository, ctx: &str) {
    let drain = |repo: &Repository| -> BTreeMap<String, Vec<Vec<u8>>> {
        let mut out = BTreeMap::new();
        for q in QUEUES {
            let qm = repo.qm_for(q);
            let (h, _) = qm.register(q, "drain", false).unwrap();
            let mut payloads = Vec::new();
            while let Ok(elem) = repo.autocommit_on(q, |t| {
                qm.dequeue(t.id().raw(), &h, DequeueOptions::default())
            }) {
                payloads.push(elem.payload);
            }
            out.insert(q.to_string(), payloads);
        }
        out
    };
    assert_eq!(
        drain(mono),
        drain(part),
        "{ctx}: drained payload sequences diverged between partition counts"
    );
}

fn run_pair(seed: u64) {
    let script = FaultScript::generate(seed);
    let crashes: Vec<FaultEvent> = script
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                FaultEvent::ServerCrash { .. } | FaultEvent::RepoCrash { .. }
            )
        })
        .copied()
        .collect();

    let disks_m = RepoDisks::new();
    let disks_p = RepoDisks::new();
    let mut mono = Repository::open_with("req-mono", disks_m.clone(), opts(1))
        .unwrap()
        .0;
    let mut part = Repository::open_with("req-part", disks_p.clone(), opts(4))
        .unwrap()
        .0;
    let homes: std::collections::BTreeSet<usize> =
        QUEUES.iter().map(|q| part.partition_of(q)).collect();
    assert!(
        homes.len() >= 3,
        "workload queues must span several partitions, got homes {homes:?}"
    );
    create_queues(&mono);
    create_queues(&part);
    let mut rng_m = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut rng_p = SplitMix::new(seed ^ 0x9E37_79B9_7F4A_7C15);

    for serial in 1..=script.n_requests {
        step(&mono, &mut rng_m, serial);
        step(&part, &mut rng_p, serial);
        for ev in &crashes {
            let (es, torn, part_hit) = match *ev {
                FaultEvent::ServerCrash {
                    serial: es, torn, ..
                } => (es, torn, None),
                FaultEvent::RepoCrash {
                    serial: es,
                    part: p,
                    torn,
                } => (es, torn, Some(p as usize)),
                _ => continue,
            };
            if es != serial {
                continue;
            }
            drop(mono);
            drop(part);
            match part_hit {
                // Whole-node crash on both sides.
                None => {
                    disks_m.crash_with(torn);
                    disks_p.crash_with(torn);
                }
                // Partition-scoped: the monolithic twin's only partition is
                // its whole node; the partitioned side loses one partition's
                // devices while its siblings keep even unsynced bytes.
                Some(p) => {
                    disks_m.crash_partition(0, torn, 0);
                    disks_p.crash_partition(p % 4, torn, 0);
                }
            }
            mono = Repository::open_with("req-mono", disks_m.clone(), opts(1))
                .unwrap()
                .0;
            part = Repository::open_with("req-part", disks_p.clone(), opts(4))
                .unwrap()
                .0;
            create_queues(&mono);
            create_queues(&part);
            assert_pair_equivalent(
                &mono,
                &part,
                &format!("seed {seed} crash at {serial} (part {part_hit:?}, {torn:?})"),
            );
        }
        assert_pair_equivalent(&mono, &part, &format!("seed {seed} serial {serial}"));
    }

    // Final clean restart, then drain: logical content must match exactly.
    drop(mono);
    drop(part);
    disks_m.crash();
    disks_p.crash();
    let mono = Repository::open_with("req-mono", disks_m, opts(1))
        .unwrap()
        .0;
    let part = Repository::open_with("req-part", disks_p, opts(4))
        .unwrap()
        .0;
    create_queues(&mono);
    create_queues(&part);
    assert_pair_equivalent(&mono, &part, &format!("seed {seed} final restart"));
    assert_drains_equal(&mono, &part, &format!("seed {seed} final drain"));
}

#[test]
fn partitioned_repository_matches_monolithic_across_crash_schedules() {
    for seed in 0..16 {
        run_pair(seed);
    }
}

/// Full-stack lockstep: the same generated fault scripts must leave the
/// oracle battery silent at one *and* at four repository partitions — same
/// replies (both runs hit the same balance model exactly), same ledger
/// (exactly-once in both), money conserved in both.
#[test]
fn generated_scripts_pass_oracles_at_one_and_four_partitions() {
    for seed in 1..=10u64 {
        let script = FaultScript::generate(seed);
        for parts in [1usize, 4] {
            let cfg = ExplorerConfig {
                repo_partitions: parts,
                ..ExplorerConfig::default()
            };
            let outcome = run_script(&script, &cfg);
            assert_eq!(
                outcome.violations,
                Vec::<String>::new(),
                "seed {seed} at {parts} partition(s) tripped the oracle battery"
            );
        }
    }
}
