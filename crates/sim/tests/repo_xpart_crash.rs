//! Directed crash-window tests for cross-partition two-phase commit.
//!
//! The partition-equivalence battery (`repo_partition_equiv.rs`) shows
//! partitioning is invisible when nothing goes wrong mid-protocol. This
//! file aims at the two windows that make shared-nothing 2PC hard:
//!
//! * A cross-partition move prepared on both partitions whose *home*
//!   partition then loses its devices. On recovery the transaction
//!   resurfaces as in-doubt and must resolve from the shared coordinator
//!   log alone — commit-way when a decision was logged, abort-way
//!   (presumed abort) when the crash hit before the decision record.
//! * A partition-local request, which must be provably free of
//!   cross-partition machinery: no sibling enlistments, no two-phase
//!   rounds, no sibling lock grants, not one byte appended to a sibling's
//!   WAL — counter-asserted on all four surfaces.
//!
//! A checked-in fault script (`data/repo-crash-xpart.rrqs`) rides along: at
//! five repository partitions the explorer's request and reply queues land
//! on *different* partitions, so every request commits through the logged
//! two-phase protocol, and the script's partition-scoped crashes straddle
//! those commits. The oracle battery must stay silent.

use rrq_core::api::{LocalQm, QmApi};
use rrq_core::clerk::{Clerk, ClerkConfig, SendMode};
use rrq_core::request::Reply;
use rrq_core::rid::Rid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::{RepoDisks, RepoOptions, Repository};
use rrq_qm::route::partition_of;
use rrq_sim::explorer::{self, ExplorerConfig};
use rrq_txn::{CoordinatorLog, ResourceManager};
use std::path::PathBuf;
use std::sync::Arc;

fn partitioned(name: &str, disks: RepoDisks, n: usize) -> Repository {
    Repository::open_with(
        name,
        disks,
        RepoOptions {
            repo_partitions: n,
            ..RepoOptions::default()
        },
    )
    .unwrap()
    .0
}

/// Two queue names guaranteed to live on different partitions of `repo`.
fn two_queues_apart(repo: &Repository) -> (String, String) {
    let qa = "q0".to_string();
    let pa = repo.partition_of(&qa);
    for i in 1..64 {
        let qb = format!("q{i}");
        if repo.partition_of(&qb) != pa {
            return (qa, qb);
        }
    }
    panic!("no second partition reachable in 64 queue names");
}

/// Build a cross-partition move (dequeue from `qa`, enqueue to `qb`), drive
/// it through *both* prepare phases, and abandon it mid-protocol — exactly
/// the state a coordinator crash between prepare and commit leaves behind.
/// Returns the prepared transaction's raw id.
fn prepare_xpart_move(repo: &Repository, qa: &str, qb: &str) -> u64 {
    let (ha, _) = repo.qm_for(qa).register(qa, "mv", false).unwrap();
    let (hb, _) = repo.qm_for(qb).register(qb, "mv", false).unwrap();
    repo.autocommit_on(qa, |t| {
        repo.qm_for(qa)
            .enqueue(t.id().raw(), &ha, b"moved", EnqueueOptions::default())
    })
    .unwrap();

    let (txn, home) = repo.begin_on(qa).unwrap();
    let e = repo
        .qm_for(qa)
        .dequeue(txn.id().raw(), &ha, DequeueOptions::default())
        .unwrap();
    let qm_b = repo.enlist_queue(&txn, home, qb).unwrap();
    qm_b.enqueue(txn.id().raw(), &hb, &e.payload, EnqueueOptions::default())
        .unwrap();
    assert_eq!(txn.enlisted(), 2, "move must span two partitions");

    let id = txn.id();
    ResourceManager::prepare(&**repo.qm_for(qa), id).unwrap();
    ResourceManager::prepare(&**repo.qm_for(qb), id).unwrap();
    // The crash happens "now": no commit, no abort, no lock release. The
    // leaked lock state dies with this repository instance.
    std::mem::forget(txn);
    id.raw()
}

/// Crash the home partition after prepare but *before* any decision record:
/// recovery must resurface the transaction as in-doubt on both partitions
/// and resolve it by presumed abort — element back on `qa`, nothing on `qb`.
#[test]
fn prepared_xpart_move_resolves_abort_after_home_partition_crash() {
    let disks = RepoDisks::new();
    let (qa, qb);
    {
        let repo = partitioned("xa", disks.clone(), 4);
        (qa, qb) = two_queues_apart(&repo);
        repo.create_queue_defaults(&qa).unwrap();
        repo.create_queue_defaults(&qb).unwrap();
        let _ = prepare_xpart_move(&repo, &qa, &qb);
    }
    let home = partition_of(&qa, 4);
    disks.crash_partition(home, None, 0);

    let (repo2, report) = Repository::open_with(
        "xa",
        disks,
        RepoOptions {
            repo_partitions: 4,
            ..RepoOptions::default()
        },
    )
    .unwrap();
    assert!(
        !report.in_doubt.is_empty(),
        "prepared transaction must resurface as in-doubt"
    );
    assert_eq!(repo2.qm_for(&qa).depth(&qa).unwrap(), 1, "dequeue undone");
    assert_eq!(repo2.qm_for(&qb).depth(&qb).unwrap(), 0, "enqueue undone");
    // No leaked locks on either partition: the element is takeable.
    let (ha, _) = repo2.qm_for(&qa).register(&qa, "after", false).unwrap();
    let e = repo2
        .autocommit_on(&qa, |t| {
            repo2
                .qm_for(&qa)
                .dequeue(t.id().raw(), &ha, DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(e.payload, b"moved");
}

/// Same window, but the coordinator's commit decision hit the shared log
/// before the home partition died: recovery must resolve the in-doubt
/// transaction commit-way on both partitions — element gone from `qa`,
/// present on `qb`.
#[test]
fn prepared_xpart_move_resolves_commit_after_home_partition_crash() {
    let disks = RepoDisks::new();
    let (qa, qb);
    let txn_raw;
    {
        let repo = partitioned("xc", disks.clone(), 4);
        (qa, qb) = two_queues_apart(&repo);
        repo.create_queue_defaults(&qa).unwrap();
        repo.create_queue_defaults(&qb).unwrap();
        txn_raw = prepare_xpart_move(&repo, &qa, &qb);
    }
    // The decision record lands in the cluster-shared coordinator log —
    // the same device every partition's recovery consults.
    CoordinatorLog::new(Arc::new(disks.coord.clone()))
        .log_decision(rrq_txn::TxnId(txn_raw), true)
        .unwrap();
    let home = partition_of(&qa, 4);
    disks.crash_partition(home, None, 0);

    let (repo2, report) = Repository::open_with(
        "xc",
        disks,
        RepoOptions {
            repo_partitions: 4,
            ..RepoOptions::default()
        },
    )
    .unwrap();
    assert!(
        !report.in_doubt.is_empty(),
        "prepared transaction must resurface as in-doubt"
    );
    assert_eq!(repo2.qm_for(&qa).depth(&qa).unwrap(), 0, "dequeue kept");
    assert_eq!(repo2.qm_for(&qb).depth(&qb).unwrap(), 1, "enqueue kept");
    let (hb, _) = repo2.qm_for(&qb).register(&qb, "after", false).unwrap();
    let e = repo2
        .autocommit_on(&qb, |t| {
            repo2
                .qm_for(&qb)
                .dequeue(t.id().raw(), &hb, DequeueOptions::default())
        })
        .unwrap();
    assert_eq!(
        e.payload, b"moved",
        "moved element committed on the sibling"
    );
}

/// A partition-local request must touch exactly one partition: zero
/// cross-partition enlistments, zero two-phase rounds, zero sibling lock
/// grants, zero bytes forced to any sibling WAL. Asserted over a full
/// clerk→server round trip with request and reply queues co-located.
#[test]
fn partition_local_request_never_touches_siblings() {
    const PARTS: usize = 4;
    // "req" and "reply.c1" provably share a home at four partitions — the
    // whole round trip (request enqueue, server dequeue+reply, client
    // dequeue) is partition-local by placement.
    assert_eq!(
        partition_of("req", PARTS),
        partition_of("reply.c1", PARTS),
        "test premise: request and reply queues co-located"
    );
    let obs = rrq_obs::Session::start();

    let repo = Arc::new(partitioned("local", RepoDisks::new(), PARTS));
    for q in ["req", "reply.c1"] {
        repo.create_queue_defaults(q).unwrap();
    }
    let home = repo.partition_of("req");
    let siblings: Vec<usize> = (0..PARTS).filter(|&p| p != home).collect();
    let base: Vec<(u64, (u64, u64), u64)> = siblings
        .iter()
        .map(|&p| {
            let tm = repo.tm_at(p);
            let s = tm.locks().stats();
            (
                repo.store_at(p).wal_len(),
                repo.store_at(p).txn_counts(),
                s.immediate_grants + s.waited_grants,
            )
        })
        .collect();

    let server = rrq_core::server::Server::new(
        Arc::clone(&repo),
        rrq_core::server::ServerConfig::new("local-s0", "req"),
        Arc::new(|_ctx, req: &rrq_core::request::Request| {
            Ok(rrq_core::server::HandlerOutcome::Reply(req.body.clone()))
        }),
    )
    .unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let t = server.spawn(Arc::clone(&stop));

    let api: Arc<dyn QmApi> = Arc::new(LocalQm::new(Arc::clone(&repo)));
    let mut ccfg = ClerkConfig::new("c1", "req");
    ccfg.send_mode = SendMode::Acked;
    let clerk = Clerk::new(api, ccfg);
    clerk.connect().unwrap();
    for serial in 1..=8u64 {
        let rid = Rid::new("c1", serial);
        clerk
            .send("echo", format!("p{serial}").into_bytes(), rid.clone())
            .unwrap();
        let reply: Reply = clerk.receive(&[]).unwrap();
        assert_eq!(reply.rid, rid);
    }
    clerk.disconnect().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Release);
    t.join().unwrap();

    let snap = obs.snapshot();
    for c in [
        "route.xpart.enlists",
        "txn.twophase.rounds",
        "txn.twophase.decisions",
        "txn.xpart.commits",
        "txn.xpart.aborts",
    ] {
        assert_eq!(snap.counter(c), 0, "partition-local requests bumped {c}");
    }
    for (i, &p) in siblings.iter().enumerate() {
        let tm = repo.tm_at(p);
        let s = tm.locks().stats();
        assert_eq!(
            repo.store_at(p).wal_len(),
            base[i].0,
            "sibling p{p} WAL grew — a partition-local request forced it"
        );
        assert_eq!(
            repo.store_at(p).txn_counts(),
            base[i].1,
            "sibling p{p} saw transactions"
        );
        assert_eq!(
            s.immediate_grants + s.waited_grants,
            base[i].2,
            "sibling p{p} granted locks"
        );
    }
}

/// The checked-in regression script: partition-scoped crashes (one torn)
/// and a single-partition network cut, replayed at five repository
/// partitions — where request and reply queues live on different partitions,
/// so every request commits cross-partition through the coordinator log.
/// The oracle battery must stay silent and every crash must have fired.
#[test]
fn checked_in_repo_crash_script_stays_green_across_xpart_commits() {
    const PARTS: usize = 5;
    assert_ne!(
        partition_of("req", PARTS),
        partition_of("reply.c1", PARTS),
        "test premise: five partitions split the request and reply queues"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/repo-crash-xpart.rrqs");
    let cfg = ExplorerConfig {
        repo_partitions: PARTS,
        ..ExplorerConfig::default()
    };
    let (script, outcome) = explorer::replay_file(&path, &cfg).unwrap();
    assert_eq!(script.events.len(), 4, "script should carry four events");
    assert_eq!(
        outcome.violations,
        Vec::<String>::new(),
        "oracle battery must stay green across partition-scoped crashes; trace:\n{:#?}",
        outcome.trace
    );
    assert_eq!(outcome.server_crashes, 3, "all three repo crashes fired");
}
