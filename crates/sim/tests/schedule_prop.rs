//! Properties of [`CrashSchedule`]: constructors honour their bounds, and
//! random schedules are a pure function of the seed.

use proptest::prelude::*;
use rrq_sim::driver::CrashPoint;
use rrq_sim::schedule::CrashSchedule;

const POINTS: [CrashPoint; 3] = [
    CrashPoint::AfterSend,
    CrashPoint::AfterReceive,
    CrashPoint::AfterProcess,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_is_seed_stable_and_in_bounds(
        n in 0u64..200,
        p in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let a = CrashSchedule::random(n, p, seed);
        let b = CrashSchedule::random(n, p, seed);
        // Pure in the seed: identical decision at every serial, including
        // outside the generated range.
        for s in 0..=n + 2 {
            prop_assert_eq!(a.get(s), b.get(s));
        }
        // Crashes land only on workload serials.
        prop_assert!(a.len() as u64 <= n);
        prop_assert_eq!(a.get(0), None);
        prop_assert_eq!(a.get(n + 1), None);
        // len agrees with a serial-by-serial count, and is_empty with both.
        let counted = (1..=n).filter(|s| a.get(*s).is_some()).count();
        prop_assert_eq!(counted, a.len());
        prop_assert_eq!(a.is_empty(), counted == 0);
    }

    #[test]
    fn random_probability_extremes_are_exact(n in 1u64..200, seed in 0u64..1_000_000) {
        prop_assert!(CrashSchedule::random(n, 0.0, seed).is_empty());
        prop_assert_eq!(CrashSchedule::random(n, 1.0, seed).len() as u64, n);
    }

    #[test]
    fn single_hits_exactly_its_serial(serial in 1u64..500, pi in 0usize..3) {
        let point = POINTS[pi];
        let s = CrashSchedule::single(serial, point);
        prop_assert_eq!(s.get(serial), Some(point));
        prop_assert_eq!(s.len(), 1);
        for other in (serial.saturating_sub(3)..serial + 3).filter(|o| *o != serial) {
            prop_assert_eq!(s.get(other), None);
        }
    }

    #[test]
    fn every_covers_each_serial_with_the_same_point(n in 0u64..300, pi in 0usize..3) {
        let point = POINTS[pi];
        let s = CrashSchedule::every(n, point);
        prop_assert_eq!(s.len() as u64, n);
        for serial in 1..=n {
            prop_assert_eq!(s.get(serial), Some(point));
        }
        prop_assert_eq!(s.get(0), None);
        prop_assert_eq!(s.get(n + 1), None);
    }

    #[test]
    fn different_seeds_eventually_differ(n in 50u64..100) {
        // With p = 0.5 over ≥ 50 serials, two seeds agreeing everywhere
        // would mean the seed is ignored.
        let a = CrashSchedule::random(n, 0.5, 1);
        let b = CrashSchedule::random(n, 0.5, 2);
        prop_assert!((1..=n).any(|s| a.get(s) != b.get(s)));
    }
}

#[test]
fn none_is_empty() {
    let s = CrashSchedule::none();
    assert!(s.is_empty());
    assert_eq!(s.len(), 0);
    assert_eq!(s.get(1), None);
}
