// Fixture: acquires `a-lock` while `b-lock` is held, violating the declared
// `a-lock` < `b-lock` order — once directly, once through a call.
pub struct S;

pub fn bad_direct(s: &S) {
    let b = s.beta();
    let a = s.alpha();
    use_both(a, b);
}

pub fn helper_acquires_a(s: &S) {
    let a = s.alpha();
    touch(a);
}

pub fn bad_through_call(s: &S) {
    let b = s.beta();
    helper_acquires_a(s);
    touch(b);
}
