// Fixture: declared order respected, commit append synced before the
// commit-point mutation, no Relaxed atomics — zero findings expected.
pub struct S;

pub fn good(s: &S) {
    let a = s.alpha();
    let b = s.beta();
    use_both(&a, &b);
}

pub fn commit_good(s: &S) {
    s.wal.append(7, RecordKind::Commit, &[]);
    s.wal.sync();
    s.index.mutate(7);
}
