// Fixture: the commit record is appended but the device is never forced, so
// the commit-point mutation is not dominated by a sync (and the append has
// no post-dominating sync either).
pub struct S;

pub fn commit_bad(s: &S) {
    s.wal.append(7, RecordKind::Commit, &[]);
    s.index.mutate(7);
}
