// Fixture: a blocking channel receive while the `no-block` class `a-lock`
// is held.
pub struct S;

pub fn bad(s: &S) {
    let g = s.alpha();
    let m = s.rx.recv();
    use_both(g, m);
}
