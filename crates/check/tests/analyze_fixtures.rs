//! Negative-test fixtures for the `rrq-analyze` rule families.
//!
//! Each fixture under `tests/fixtures/<name>/` is a miniature workspace
//! root (its own `LOCKS.md` plus `crates/app/src/lib.rs`) with exactly one
//! deliberately-broken example of a rule; the tests assert the exact
//! finding output — file:line, message, and witnessing chain — so a change
//! to the analyzer's report format or detection logic fails loudly here.
//! The `clean` fixture proves the same catalogue shape yields zero
//! findings on conforming code.

use std::path::PathBuf;

use rrq_check::analyze;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

const LIB: &str = "crates/app/src/lib.rs";

#[test]
fn lock_order_fixture_reports_both_violations_with_chains() {
    let out = analyze::run(&fixture("lock-order")).unwrap();
    assert_eq!(out.files_scanned, 1);
    assert_eq!(out.findings.len(), 2, "{:#?}", out.findings);

    let direct = &out.findings[0];
    assert_eq!(direct.rule, analyze::RULE_LOCK_ORDER);
    assert_eq!(direct.file, LIB);
    assert_eq!(direct.line, 7);
    assert_eq!(
        direct.message,
        "acquires `a-lock` while holding `b-lock`: edge `b-lock` -> `a-lock` \
         is not in the declared order (LOCKS.md)"
    );
    assert_eq!(
        direct.chain,
        vec![
            format!("`b-lock` acquired at {LIB}:6"),
            format!("`a-lock` then acquired at {LIB}:7 in fn `bad_direct`"),
        ]
    );

    let through_call = &out.findings[1];
    assert_eq!(through_call.rule, analyze::RULE_LOCK_ORDER);
    assert_eq!(through_call.line, 18);
    assert_eq!(
        through_call.message,
        "acquires `a-lock` while holding `b-lock`: edge `b-lock` -> `a-lock` \
         is not in the declared order (LOCKS.md) (through `helper_acquires_a`)"
    );
    assert_eq!(
        through_call.chain,
        vec![
            format!("`b-lock` acquired at {LIB}:17"),
            format!(
                "`a-lock` then acquired via `helper_acquires_a` at {LIB}:18 \
                 in fn `bad_through_call`"
            ),
        ]
    );
}

#[test]
fn no_block_fixture_reports_the_blocking_op_and_acquisition_site() {
    let out = analyze::run(&fixture("no-block")).unwrap();
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    let f = &out.findings[0];
    assert_eq!(f.rule, analyze::RULE_NO_BLOCK);
    assert_eq!(f.file, LIB);
    assert_eq!(f.line, 7);
    assert_eq!(
        f.message,
        format!(
            "blocking operation `{}` while `a-lock` (no-block) is held",
            concat!(".re", "cv(")
        )
    );
    assert_eq!(
        f.chain,
        vec![format!("`a-lock` acquired at {LIB}:6 in fn `bad`")]
    );
}

#[test]
fn durability_fixture_reports_undominated_mutation_and_unsynced_append() {
    let out = analyze::run(&fixture("durability")).unwrap();
    assert_eq!(out.findings.len(), 2, "{:#?}", out.findings);

    let append = &out.findings[0];
    assert_eq!(append.rule, analyze::RULE_DURABILITY);
    assert_eq!(append.file, LIB);
    assert_eq!(append.line, 7);
    assert_eq!(
        append.message,
        "commit-record append in fn `commit_bad` is not followed by a sync \
         on every path"
    );
    assert_eq!(
        append.chain,
        vec![format!("append at {LIB}:7 has no post-dominating sync")]
    );

    let mutation = &out.findings[1];
    assert_eq!(mutation.rule, analyze::RULE_DURABILITY);
    assert_eq!(mutation.line, 8);
    assert_eq!(
        mutation.message,
        format!(
            "commit-point mutation `{}` in fn `commit_bad` is not dominated \
             by a durable sync",
            concat!(".mut", "ate(")
        )
    );
    assert_eq!(
        mutation.chain,
        vec![format!(
            "no dominating durability event on some path to {LIB}:8"
        )]
    );
}

#[test]
fn relaxed_fixture_reports_the_ordering_with_file_and_line() {
    let out = analyze::run(&fixture("relaxed")).unwrap();
    assert_eq!(out.findings.len(), 1, "{:#?}", out.findings);
    let f = &out.findings[0];
    assert_eq!(f.rule, analyze::RULE_RELAXED);
    assert_eq!(f.file, LIB);
    assert_eq!(f.line, 5);
    assert_eq!(
        f.message,
        format!(
            "atomic uses `{}` outside `crates/obs`; state the intended \
             ordering (Acquire/Release/AcqRel or SeqCst)",
            analyze::scan::PAT_RELAXED
        )
    );
    assert!(f.chain.is_empty());
}

#[test]
fn clean_fixture_yields_zero_findings() {
    let out = analyze::run(&fixture("clean")).unwrap();
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
    assert_eq!(out.files_scanned, 1);
    assert_eq!(out.suppressed, 0);
}

#[test]
fn rule_subset_runs_only_the_requested_families() {
    // The lock-order fixture has two lock-order findings and nothing else;
    // asking only for durability must come back clean.
    let out = analyze::run_rules(&fixture("lock-order"), &[analyze::RULE_DURABILITY]).unwrap();
    assert!(out.findings.is_empty(), "{:#?}", out.findings);
}
