//! The workspace-level analyzer gate: the real tree must scan clean.
//!
//! This is the test-suite twin of the `rrq-analyze` ci.sh step. If it
//! fails, either a real invariant was broken (fix the code) or the
//! analyzer has a new false positive (fix the analyzer or, as a last
//! resort, add an explained allowlist entry under `crates/check/lints/`).

use std::path::PathBuf;

use rrq_check::analyze;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_scans_clean() {
    let out = analyze::run(&workspace_root()).unwrap();
    let rendered: Vec<String> = out.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        out.findings.is_empty(),
        "rrq-analyze findings on the workspace:\n{}",
        rendered.join("\n")
    );
    // Sanity: the scan actually covered the tree (84 files at the time of
    // writing) rather than silently matching nothing.
    assert!(
        out.files_scanned > 20,
        "only {} files scanned — collection is broken",
        out.files_scanned
    );
}

#[test]
fn catalogue_classes_all_match_somewhere() {
    // Every class declared in LOCKS.md should have at least one acquisition
    // site in the tree; a dead class means the catalogue drifted from the
    // code and the rules silently stopped covering that lock.
    let root = workspace_root();
    let cat = analyze::catalogue::load(&root).unwrap();

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            collect(&src, &mut files);
        }
    }
    let mut seen = vec![false; cat.classes.len()];
    for file in &files {
        let rel_owned = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let facts = analyze::scan::scan_file(file, &rel_owned, &cat).unwrap();
        for f in &facts.fns {
            for e in &f.events {
                if let analyze::scan::EventKind::Acquire { class } = &e.kind {
                    seen[*class] = true;
                }
            }
        }
    }
    let dead: Vec<&str> = cat
        .classes
        .iter()
        .zip(&seen)
        .filter(|(_, &s)| !s)
        .map(|(c, _)| c.name.as_str())
        .collect();
    assert!(
        dead.is_empty(),
        "classes with no acquisition site: {dead:?}"
    );
}

fn collect(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
