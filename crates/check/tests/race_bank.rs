//! Happens-before race detection over the instrumented production paths.
//!
//! Positive: a concurrent bank run (4 servers sharing one queue, lock-
//! protected balance updates, queue-edge-ordered element cells) must be
//! race-free. Negative: a deliberately unlocked write to an account cell
//! must be flagged, with both access stacks in the report.

use rrq_check::race::{self, Session};
use rrq_core::api::{LocalQm, QmApi};
use rrq_core::request::{Reply, Request};
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::Repository;
use rrq_storage::codec::{Decode, Encode};
use rrq_workload::bank;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn run_transfers(name: &str, n: u64) -> Arc<Repository> {
    let repo = Arc::new(Repository::create(name).unwrap());
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.c").unwrap();
    bank::seed_accounts(&repo, 6, 10_000).unwrap();
    let (_servers, handles, stop) =
        spawn_pool(&repo, "req", 4, bank::single_txn_handler()).unwrap();

    let api = LocalQm::new(Arc::clone(&repo));
    api.register("req", "c", false).unwrap();
    api.register("reply.c", "c", false).unwrap();
    for serial in 1..=n {
        // Overlapping account pairs so servers genuinely contend on locks.
        let t = bank::Transfer {
            from: (serial % 6) as u32,
            to: ((serial + 1) % 6) as u32,
            amount: 50,
        };
        let req = Request::new(Rid::new("c", serial), "reply.c", "transfer", t.encode());
        api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
    }
    for _ in 0..n {
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.body, b"transferred");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    repo
}

#[test]
fn concurrent_bank_run_is_race_free() {
    let session = Session::start();
    let repo = run_transfers("race-bank-ok", 30);
    assert_eq!(bank::total_money(&repo, 6).unwrap(), 60_000);
    session.assert_race_free();
}

#[test]
fn unlocked_account_write_is_flagged() {
    let session = Session::start();
    let repo = run_transfers("race-bank-neg", 6);
    assert_eq!(bank::total_money(&repo, 6).unwrap(), 60_000);

    // A rogue thread writing an account cell without taking the BANK_NS
    // lock: no lock or queue edge orders it against the servers' protected
    // writes, so the detector must flag the pair. (The main test thread
    // would NOT do as the rogue — draining the reply queue ordered it after
    // every server write via the queue edge, which is exactly the
    // happens-before reasoning the detector encodes.)
    std::thread::spawn(|| race::on_write(&bank::account_cell(0)))
        .join()
        .unwrap();

    let reports = session.take_reports();
    assert!(
        !reports.is_empty(),
        "unlocked write must race with the servers' locked writes"
    );
    let rendered = reports[0].to_string();
    assert!(
        rendered.contains(&bank::account_cell(0)),
        "report names the cell: {rendered}"
    );
    // Both access stacks are dumped for diagnosis.
    assert!(
        rendered.contains("first access") && rendered.contains("second access"),
        "report carries both access stacks: {rendered}"
    );
}
