//! The workspace lint gate: `cargo test -p rrq-check` fails if any source
//! lint fires anywhere in `crates/*/src`. Future PRs inherit the checks by
//! keeping this test green (or by adding a justified allowlist entry under
//! `crates/check/lints/`).

use rrq_check::lint;
use std::path::Path;

#[test]
fn workspace_sources_pass_all_lints() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = lint::run(&root).expect("lint walk succeeds");
    assert!(
        outcome.files_scanned > 20,
        "the walk must cover the workspace (saw {} files)",
        outcome.files_scanned
    );
    assert!(
        outcome.findings.is_empty(),
        "lint violations:\n{}",
        outcome
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
