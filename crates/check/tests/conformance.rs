//! End-to-end protocol conformance: the Fig 1 / Fig 5 state machines must
//! hold over real E1-style (client crash sweep) and E4-style (server pool
//! throughput) runs, with the checker installed as the protocol observer.

use rrq_check::protocol::{emit_client, emit_server, ClientEvent, Conformance, ServerEvent};
use rrq_core::api::{LocalQm, QmApi};
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::device::TicketPrinter;
use rrq_core::request::{Reply, Request};
use rrq_core::rid::Rid;
use rrq_core::server::{spawn_pool, HandlerOutcome};
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::Repository;
use rrq_sim::driver::{ClientCrashDriver, CrashPoint};
use rrq_sim::schedule::CrashSchedule;
use rrq_storage::codec::{Decode, Encode};
use rrq_workload::bank;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn mk_repo(name: &str, queues: &[&str]) -> Arc<Repository> {
    let repo = Arc::new(Repository::create(name).unwrap());
    for q in queues {
        repo.create_queue_defaults(q).unwrap();
    }
    repo
}

fn mk_clerk(repo: &Arc<Repository>, client: &str) -> Clerk {
    let api = Arc::new(LocalQm::new(Arc::clone(repo)));
    let mut cfg = ClerkConfig::new(client, "req");
    cfg.reply_queue = format!("reply.{client}");
    cfg.receive_block = Duration::from_secs(20);
    Clerk::new(api, cfg)
}

/// One E1-style run: a crash driver against a 2-server pool, with the
/// conformance observer watching every clerk and server transition.
fn e1_run(name: &str, schedule: CrashSchedule, n: u64) {
    let (conf, session) = Conformance::install();
    let repo = mk_repo(name, &["req", "reply.c"]);
    let handler: rrq_core::server::Handler = Arc::new(|_ctx, req| {
        Ok(HandlerOutcome::Reply(
            format!("r{}", req.rid.serial).into_bytes(),
        ))
    });
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 2, handler).unwrap();
    let driver = ClientCrashDriver::new(|| mk_clerk(&repo, "c"), "op");
    let mut printer = TicketPrinter::new();
    let report = driver
        .run(n, |s| schedule.get(s), |s| vec![s as u8], &mut printer)
        .unwrap();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(report.completed, n, "every request completes");
    let (client_events, server_events) = conf.events_seen();
    assert!(client_events > 0, "clerk transitions were observed");
    assert!(server_events > 0, "server transitions were observed");
    conf.assert_conformant();
    drop(session);
}

#[test]
fn e1_crashless_run_is_conformant() {
    e1_run("conf-e1-none", CrashSchedule::none(), 12);
}

#[test]
fn e1_crash_after_send_is_conformant() {
    e1_run(
        "conf-e1-send",
        CrashSchedule::every(8, CrashPoint::AfterSend),
        8,
    );
}

#[test]
fn e1_crash_after_receive_is_conformant() {
    e1_run(
        "conf-e1-recv",
        CrashSchedule::every(8, CrashPoint::AfterReceive),
        8,
    );
}

#[test]
fn e1_crash_after_process_is_conformant() {
    e1_run(
        "conf-e1-proc",
        CrashSchedule::every(8, CrashPoint::AfterProcess),
        8,
    );
}

#[test]
fn e1_random_crash_sweep_is_conformant() {
    e1_run("conf-e1-rand", CrashSchedule::random(16, 0.5, 42), 16);
}

/// E4-style run: a 4-server pool draining the bank workload, including the
/// abort/retry path (flaky handler), all under the conformance observer.
#[test]
fn e4_pool_run_with_aborts_is_conformant() {
    let (conf, session) = Conformance::install();
    let repo = mk_repo("conf-e4", &["req", "reply.c"]);
    bank::seed_accounts(&repo, 8, 10_000).unwrap();
    let (_servers, handles, stop) =
        spawn_pool(&repo, "req", 4, bank::flaky_transfer_handler(3)).unwrap();

    let api = LocalQm::new(Arc::clone(&repo));
    api.register("req", "c", false).unwrap();
    api.register("reply.c", "c", false).unwrap();
    let n = 24u64;
    for serial in 1..=n {
        let t = bank::Transfer {
            from: (serial % 8) as u32,
            to: ((serial + 3) % 8) as u32,
            amount: 100,
        };
        let req = Request::new(Rid::new("c", serial), "reply.c", "transfer", t.encode());
        api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
    }
    for _ in 0..n {
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(60)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.body, b"transferred");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(bank::total_money(&repo, 8).unwrap(), 80_000);
    let (_, server_events) = conf.events_seen();
    assert!(server_events > 0, "server transitions were observed");
    conf.assert_conformant();
    drop(session);
}

/// Negative control: an illegal emitted sequence must be reported, and the
/// violation must carry the offending event trace.
#[test]
fn illegal_server_sequence_is_reported_with_trace() {
    let (conf, session) = Conformance::install();
    emit_server("neg-s", ServerEvent::Dequeue { rid: "c:1".into() });
    // Dequeue while already Processing: no Fig 5 transition allows it.
    emit_server("neg-s", ServerEvent::Dequeue { rid: "c:2".into() });
    let violations = conf.violations();
    assert_eq!(violations.len(), 1, "exactly one illegal transition");
    let rendered = violations[0].to_string();
    assert!(rendered.contains("neg-s"), "violation names the server");
    assert!(
        rendered.contains("event trace"),
        "violation dumps the offending trace: {rendered}"
    );
    drop(session);
}

#[test]
fn illegal_client_sequence_is_reported_with_trace() {
    let (conf, session) = Conformance::install();
    // Send without Connect: illegal from Disconnected (Fig 1).
    emit_client(
        "neg-c",
        ClientEvent::Send {
            rid: "neg-c:1".into(),
            acked: true,
        },
    );
    let violations = conf.violations();
    assert_eq!(violations.len(), 1);
    assert!(violations[0].to_string().contains("neg-c"));
    drop(session);
}
