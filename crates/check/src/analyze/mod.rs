//! `rrq-analyze`: a dependency-free, multi-pass static analyzer over the
//! whole workspace.
//!
//! Where `lint.rs` checks single lines and fixed windows, this module builds
//! a per-function fact base (lock acquisitions by declared class, calls,
//! blocking operations, sync points, commit-record appends, commit-point
//! mutations — see [`scan`]), reads the lock-class catalogue from the
//! checked-in `LOCKS.md` ([`catalogue`]), and runs four rule families over
//! the propagated call graph ([`rules`]):
//!
//! 1. `lock-order` — cross-crate lock-acquisition order vs the declared
//!    partial order, including acquisitions reached through calls.
//! 2. `no-block-under-guard` — blocking ops while a `no-block` guard is live.
//! 3. `durability-dominator` — commit-point mutations dominated by a WAL
//!    commit append + sync; appends post-dominated by a sync.
//! 4. `relaxed-ordering` — `Ordering::Relaxed` confined to `crates/obs`.
//!
//! Findings carry the witnessing acquisition chain and are filtered through
//! per-rule allowlists in `crates/check/lints/<rule>.allow`. Soundness
//! caveats (what the brace-level scan can and cannot see) are catalogued in
//! DESIGN.md §22.

pub mod catalogue;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::lint;

pub use rules::{RULE_DURABILITY, RULE_LOCK_ORDER, RULE_NO_BLOCK, RULE_RELAXED};

/// Every rule family, in reporting order.
pub const RULES: &[&str] = &[
    RULE_LOCK_ORDER,
    RULE_NO_BLOCK,
    RULE_DURABILITY,
    RULE_RELAXED,
];

/// One analyzer finding, with its witness chain.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule family fired.
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The witnessing chain (held-guard acquisition sites, call path).
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        for link in &self.chain {
            write!(f, "\n    via {link}")?;
        }
        Ok(())
    }
}

/// Result of an analyzer pass.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings that survived the allowlists.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Run every rule family over `<root>/crates/*/src` against
/// `<root>/LOCKS.md`.
pub fn run(root: &Path) -> io::Result<Outcome> {
    run_rules(root, RULES)
}

/// Run a subset of the rule families (used by `rrq-lint`, which delegates
/// its retired `commit-sync` and `shard-lock-order` rules here).
pub fn run_rules(root: &Path, rules_wanted: &[&str]) -> io::Result<Outcome> {
    let cat = catalogue::load(root)?;

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            lint::collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut facts = Vec::with_capacity(files.len());
    for file in &files {
        let rel = lint::relative_slash(root, file);
        facts.push(scan::scan_file(file, &rel, &cat)?);
    }

    let raw = rules::apply(&cat, &facts, rules_wanted);

    let mut out = Outcome {
        files_scanned: facts.len(),
        ..Outcome::default()
    };
    for finding in raw {
        let allow = lint::load_allowlist(root, finding.rule);
        if allow.iter().any(|(suffix, frag)| {
            finding.file.ends_with(suffix.as_str()) && lint::frag_matches(frag, &finding.message)
        }) {
            out.suppressed += 1;
        } else {
            out.findings.push(finding);
        }
    }
    Ok(out)
}
