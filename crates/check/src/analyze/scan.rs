//! Per-file fact extraction: a line-oriented, brace-level scan of Rust
//! source that produces, for every function, an ordered event stream
//! (acquisitions, calls, blocking ops, sync points, commit-record appends,
//! commit-point mutations) annotated with the set of classified lock guards
//! live at each event and a block tree for dominance queries.
//!
//! This is deliberately not a parser. The same trade-off as `lint.rs`: a
//! few hundred lines of scanning that understand *this* workspace's rustfmt
//! output, with the known unsound corners documented in DESIGN.md §22.
//!
//! Pattern literals below are split with `concat!` so the analyzer does not
//! match its own source when it scans `crates/check/src`.

use std::fs;
use std::io;
use std::path::Path;

use super::catalogue::Catalogue;
use crate::lint;

/// `Ordering::Relaxed` (split so this file does not flag itself).
pub const PAT_RELAXED: &str = concat!("Ordering::Re", "laxed");
const PAT_DROP: &str = concat!("dr", "op(");
pub const PAT_DOT_SYNC: &str = concat!(".sy", "nc()");
pub const PAT_SYNC_THROUGH: &str = concat!("sync_th", "rough(");
pub const PAT_FORCE_THROUGH: &str = concat!("force_th", "rough(");
const PAT_APPEND: &str = concat!(".app", "end(");
const PAT_KIND_COMMIT: &str = concat!("RecordKind::Com", "mit");
const PAT_KIND_DECISION: &str = concat!("DECISION_", "KIND");
const PAT_THREAD_SLEEP: &str = concat!("thread::sl", "eep");
const PAT_COLON_SLEEP: &str = concat!("::sl", "eep(");
const PAT_DOT_WAIT: &str = concat!(".wa", "it(");
const PAT_WAIT_UNTIL: &str = concat!(".wait_un", "til(");
const PAT_WAIT_WHILE: &str = concat!(".wait_wh", "ile(");
const PAT_WAIT_PAST: &str = concat!(".wait_pa", "st(");
const PAT_WAIT_TIMEOUT: &str = concat!(".wait_time", "out(");
const PAT_RECV: &str = concat!(".re", "cv(");
const PAT_RECV_TIMEOUT: &str = concat!(".recv_time", "out(");
const PAT_JOIN: &str = concat!(".jo", "in()");

/// Blocking-operation patterns. Sync patterns are blocking too: a device
/// force parks the thread.
const BLOCKING_PATS: &[&str] = &[
    PAT_DOT_SYNC,
    PAT_SYNC_THROUGH,
    PAT_FORCE_THROUGH,
    PAT_THREAD_SLEEP,
    PAT_COLON_SLEEP,
    PAT_DOT_WAIT,
    PAT_WAIT_UNTIL,
    PAT_WAIT_WHILE,
    PAT_WAIT_PAST,
    PAT_WAIT_TIMEOUT,
    PAT_RECV,
    PAT_RECV_TIMEOUT,
    PAT_JOIN,
];

/// Condvar waits that release their own guard while parked: a live guard
/// whose binding appears in the argument list is exempt from no-block.
const OWN_GUARD_WAITS: &[&str] = &[PAT_DOT_WAIT, PAT_WAIT_UNTIL, PAT_WAIT_WHILE];

/// Durability-relevant sync points.
const SYNC_PATS: &[&str] = &[PAT_DOT_SYNC, PAT_SYNC_THROUGH, PAT_FORCE_THROUGH];

/// Method-ish names never resolved as workspace calls: overwhelmingly
/// homonyms of std/collection methods, so resolving them would propagate a
/// workspace function's acquisitions to every `HashMap::insert` call site.
/// Classified patterns and declared bindings still match on these lines.
const IGNORE_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "push_back",
    "pop",
    "pop_front",
    "send",
    "recv",
    "next",
    "len",
    "is_empty",
    "clone",
    "drop",
    "entry",
    "or_default",
    "or_insert_with",
    "contains_key",
    "contains",
    "iter",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "map",
    "and_then",
    "filter",
    "filter_map",
    "collect",
    "take",
    "extend",
    "retain",
    "min",
    "max",
    "new",
    "default",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "as_ref",
    "as_str",
    "to_vec",
    "to_string",
    "wait",
    "notify_all",
    "notify_one",
    "matches",
    "name",
    "now",
    "advance",
    "record",
    "merge",
    "quantile",
    "mean",
    "observe",
    "span",
    "start",
    "reset",
    "snapshot",
    "render",
    "parse",
    "diff",
    "enter",
    "meta",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_ok",
    "is_err",
    "is_some",
    "is_none",
    "any",
    "all",
    "find",
    "position",
    "count",
    "sum",
    "fold",
    "rev",
    "zip",
    "enumerate",
    "cloned",
    "copied",
    "join",
    "split",
    "trim",
    "write_all",
    "flush",
    "sync_all",
    "seek",
    "open",
    "create",
    "path",
    "exists",
    "min_by_key",
    "max_by_key",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "last",
    "first",
    "swap",
    "replace",
    "drain",
    "clear",
    "finish",
    "abs",
    "signal",
    "version",
    "tick",
];

const KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "as", "in", "fn", "let", "move", "ref", "mut",
    "else", "impl", "use", "pub", "where", "unsafe", "dyn", "box", "await", "Some", "Ok", "Err",
    "None",
];

/// One brace block in a function body. Block 0 is the body itself.
#[derive(Debug)]
pub struct Block {
    pub parent: Option<usize>,
    /// `true` for control-flow blocks (if/loop/match-arm/closure bodies);
    /// `false` for bare `{` scope blocks, which are transparent to
    /// dominance (code after them still runs).
    pub control: bool,
}

/// A classified guard live at some event.
#[derive(Debug, Clone, PartialEq)]
pub struct HeldGuard {
    pub class: usize,
    pub line: usize,
}

#[derive(Debug)]
pub enum EventKind {
    /// Direct acquisition of a classified lock.
    Acquire { class: usize },
    /// Call-site match of a declared binding (index into catalogue).
    Binding { binding: usize },
    /// Resolvable call to a workspace function name.
    Call { name: String },
    /// A blocking operation; `exempt` lists classes excused by the
    /// own-guard condvar rule.
    Blocking {
        desc: &'static str,
        exempt: Vec<usize>,
    },
    /// A durability sync point (`.sync()` / `sync_through` / `force_through`).
    Sync,
    /// A WAL commit-record append.
    CommitMarker,
    /// A commit-point state mutation (index into catalogue mutations).
    Mutation { mutation: usize },
}

#[derive(Debug)]
pub struct Event {
    pub line: usize,
    pub block: usize,
    pub kind: EventKind,
    /// Guards live just before this event.
    pub held: Vec<HeldGuard>,
}

#[derive(Debug)]
pub struct FnFact {
    pub name: String,
    pub line: usize,
    pub blocks: Vec<Block>,
    pub events: Vec<Event>,
}

#[derive(Debug)]
pub struct FileFacts {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    pub fns: Vec<FnFact>,
    /// Lines (outside `cfg(test)`) containing a Relaxed atomic ordering.
    pub relaxed: Vec<usize>,
}

impl FnFact {
    /// Nearest control ancestor-or-self: the block whose entry actually
    /// guards execution of code in `b` (bare blocks are transparent).
    pub fn eff_block(&self, mut b: usize) -> usize {
        loop {
            if self.blocks[b].control {
                return b;
            }
            match self.blocks[b].parent {
                Some(p) => b = p,
                None => return b,
            }
        }
    }

    /// Is `anc` an ancestor of (or equal to) `b` in the block tree?
    pub fn is_ancestor(&self, anc: usize, mut b: usize) -> bool {
        loop {
            if anc == b {
                return true;
            }
            match self.blocks[b].parent {
                Some(p) => b = p,
                None => return false,
            }
        }
    }

    /// Does event `e` dominate event `m` (run on every path that reaches
    /// `m`)? Approximation: `e` precedes `m` and `e`'s effective block is
    /// an ancestor-or-self of `m`'s block. Early returns between the two
    /// are the documented unsoundness.
    pub fn dominates(&self, e: usize, m: usize) -> bool {
        e < m && self.is_ancestor(self.eff_block(self.events[e].block), self.events[m].block)
    }

    /// Does event `s` post-dominate event `a` (run on every path leaving
    /// `a`)? Same approximation, mirrored.
    pub fn postdominates(&self, s: usize, a: usize) -> bool {
        s > a && self.is_ancestor(self.eff_block(self.events[s].block), self.events[a].block)
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Blank string/char-literal interiors (preserving columns) and truncate at
/// a `//` comment. `in_string` carries multi-line string state across lines.
fn strip(line: &str, in_string: &mut bool) -> String {
    let b = line.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if *in_string {
            if c == b'\\' {
                out.push(b' ');
                if i + 1 < b.len() {
                    out.push(b' ');
                    i += 2;
                    continue;
                }
            } else if c == b'"' {
                *in_string = false;
                out.push(b'"');
            } else {
                out.push(b' ');
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                *in_string = true;
                out.push(b'"');
                i += 1;
            }
            b'\'' => {
                // Char literal ('x', '\n') vs lifetime ('a). Blank literals;
                // copy lifetimes through.
                if i + 2 < b.len() && b[i + 1] != b'\\' && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"' '");
                    i += 3;
                } else if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                    out.extend_from_slice(b"'  '");
                    i += 4;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break,
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    // A backslash-continued string keeps `in_string` set for the next line.
    String::from_utf8_lossy(&out).into_owned()
}

#[derive(Debug)]
enum LiveKind {
    /// `let`-bound: dies when the owning block closes or `drop(binding)`.
    Bound { depth: usize },
    /// Statement temporary: dies at the first `;` at its depth or the first
    /// `{` opened at its depth.
    Transient { depth: usize },
    /// Scoped-binding guard waiting for its closure brace on this line.
    AwaitBrace { depth: usize },
    /// Closure-scoped guard: dies when depth returns to its level.
    Scoped { depth: usize },
}

#[derive(Debug)]
struct Live {
    class: usize,
    line: usize,
    binding: Option<String>,
    kind: LiveKind,
}

struct FnCtx {
    name: String,
    line: usize,
    decl_depth: usize,
    blocks: Vec<Block>,
    stack: Vec<usize>,
    events: Vec<Event>,
    live: Vec<Live>,
}

enum Ev {
    Open(bool), // transparent?
    Close,
    Semi,
    Class(usize),
    Bind(usize),
    Sync,
    Blocking(&'static str),
    Marker,
    Mutation(usize),
    Drop(String),
    Call(String),
}

/// Scan one file against the catalogue. `rel` is the workspace-relative
/// path used for scope filtering.
pub fn scan_file(path: &Path, rel: &str, cat: &Catalogue) -> io::Result<FileFacts> {
    let text = fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    let flags = lint::test_flags(&lines);

    let in_scope = |scopes: &[String]| scopes.iter().any(|s| rel.starts_with(s.as_str()));
    let classes: Vec<(usize, &str)> = cat
        .classes
        .iter()
        .enumerate()
        .filter(|(_, c)| in_scope(&c.scopes))
        .flat_map(|(i, c)| c.patterns.iter().map(move |p| (i, p.as_str())))
        .collect();
    let bindings: Vec<(usize, &str)> = cat
        .bindings
        .iter()
        .enumerate()
        .filter(|(_, b)| in_scope(&b.scopes))
        .map(|(i, b)| (i, b.pattern.as_str()))
        .collect();
    let mutations: Vec<(usize, &str)> = cat
        .mutations
        .iter()
        .enumerate()
        .filter(|(_, m)| in_scope(&m.scopes))
        .map(|(i, m)| (i, m.pattern.as_str()))
        .collect();
    let relaxed_in_scope = !rel.starts_with("crates/obs/src");

    let mut out = FileFacts {
        file: rel.to_string(),
        fns: Vec::new(),
        relaxed: Vec::new(),
    };

    let mut depth: usize = 0;
    let mut in_string = false;
    let mut pending_fn: Option<(String, usize, usize)> = None; // name, depth, line
    let mut cur: Option<FnCtx> = None;

    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let is_test = flags[i];
        let stripped = strip(raw, &mut in_string);
        let code = stripped.trim();

        if !is_test && relaxed_in_scope && stripped.contains(PAT_RELAXED) {
            out.relaxed.push(lineno);
        }

        // Function-definition registration (also marks this a signature
        // line: patterns and calls on it are skipped).
        let mut sig_line = false;
        if !is_test && cur.is_none() {
            if let Some(p) = find_fn_kw(&stripped) {
                let rest = &stripped[p + 3..];
                let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
                if !name.is_empty() {
                    pending_fn = Some((name, depth, lineno));
                    sig_line = true;
                }
            }
        } else if !is_test && find_fn_kw(&stripped).is_some() {
            sig_line = true; // nested item: don't extract facts from its signature
        }

        // Collect positioned events.
        let mut evs: Vec<(usize, Ev)> = Vec::new();
        {
            let sb = stripped.as_bytes();
            for (p, &c) in sb.iter().enumerate() {
                match c {
                    b'{' => evs.push((p, Ev::Open(code == "{"))),
                    b'}' => evs.push((p, Ev::Close)),
                    b';' => evs.push((p, Ev::Semi)),
                    _ => {}
                }
            }
        }

        let mut spans: Vec<(usize, usize)> = Vec::new(); // suppression spans
        if !is_test && !sig_line && cur.is_some() {
            for &(ci, pat) in &classes {
                for (p, _) in stripped.match_indices(pat) {
                    evs.push((p, Ev::Class(ci)));
                    spans.push((p, p + pat.len()));
                }
            }
            for &(bi, pat) in &bindings {
                for (p, _) in stripped.match_indices(pat) {
                    evs.push((p, Ev::Bind(bi)));
                    spans.push((p, p + pat.len()));
                }
            }
            for &pat in SYNC_PATS {
                for (p, _) in stripped.match_indices(pat) {
                    evs.push((p, Ev::Sync));
                    spans.push((p, p + pat.len()));
                }
            }
            for &pat in BLOCKING_PATS {
                for (p, _) in stripped.match_indices(pat) {
                    // `.wait(` would double-report `.wait_until(` etc. if the
                    // longer pattern also matched here; they are mutually
                    // exclusive by construction (char after the short stem
                    // differs), so no dedup needed.
                    evs.push((p, Ev::Blocking(pat)));
                    spans.push((p, p + pat.len()));
                }
            }
            for (p, _) in stripped.match_indices(PAT_DROP) {
                // `drop(x)` only; `.drop(` or `idrop(` would be a method.
                if p > 0 && is_ident(stripped.as_bytes()[p - 1] as char) {
                    continue;
                }
                let arg: String = stripped[p + PAT_DROP.len()..]
                    .chars()
                    .take_while(|&c| is_ident(c))
                    .collect();
                evs.push((p, Ev::Drop(arg)));
                spans.push((p, p + PAT_DROP.len()));
            }
            if stripped.contains(PAT_APPEND)
                && (stripped.contains(PAT_KIND_COMMIT) || stripped.contains(PAT_KIND_DECISION))
            {
                let p = stripped.find(PAT_APPEND).unwrap();
                evs.push((p, Ev::Marker));
            }
            for &(mi, pat) in &mutations {
                for (p, _) in stripped.match_indices(pat) {
                    evs.push((p, Ev::Mutation(mi)));
                    // Mutations do NOT suppress call resolution: `.retire(`
                    // is both a mutation and a resolvable call.
                }
            }
            // Call sites: identifier immediately before `(`.
            let sb = stripped.as_bytes();
            for (p, &c) in sb.iter().enumerate() {
                if c != b'(' {
                    continue;
                }
                let mut s = p;
                while s > 0 && is_ident(sb[s - 1] as char) {
                    s -= 1;
                }
                if s == p {
                    continue;
                }
                let name = &stripped[s..p];
                if name.as_bytes()[0].is_ascii_digit()
                    || name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    continue;
                }
                if s > 0 && sb[s - 1] == b'!' {
                    continue; // macro
                }
                if KEYWORDS.contains(&name) || IGNORE_CALLS.contains(&name) {
                    continue;
                }
                // A matched class/binding/sync/blocking pattern overlapping
                // the `ident(` span owns this site: no call resolution.
                if spans.iter().any(|&(a, b)| s < b && a <= p) {
                    continue;
                }
                evs.push((p, Ev::Call(name.to_string())));
            }
        }

        evs.sort_by_key(|(p, _)| *p);

        for (_, ev) in evs {
            match ev {
                Ev::Open(transparent) => {
                    // Statement temporaries die when a block opens at their
                    // depth (`if x.lock().ok() {` releases before the body).
                    if let Some(ctx) = cur.as_mut() {
                        let mut idx = 0;
                        while idx < ctx.live.len() {
                            let kill = match ctx.live[idx].kind {
                                LiveKind::Transient { depth: d } => d == depth,
                                _ => false,
                            };
                            let promote = match ctx.live[idx].kind {
                                LiveKind::AwaitBrace { depth: d } => d == depth,
                                _ => false,
                            };
                            if kill {
                                ctx.live.remove(idx);
                            } else {
                                if promote {
                                    ctx.live[idx].kind = LiveKind::Scoped { depth };
                                }
                                idx += 1;
                            }
                        }
                    }
                    if cur.is_none() {
                        if let Some((name, d, line)) = pending_fn.take() {
                            if d == depth && !is_test {
                                cur = Some(FnCtx {
                                    name,
                                    line,
                                    decl_depth: depth,
                                    blocks: vec![Block {
                                        parent: None,
                                        control: true,
                                    }],
                                    stack: vec![0],
                                    events: Vec::new(),
                                    live: Vec::new(),
                                });
                            } else {
                                pending_fn = Some((name, d, line));
                            }
                        }
                    } else if let Some(ctx) = cur.as_mut() {
                        let parent = *ctx.stack.last().unwrap();
                        ctx.blocks.push(Block {
                            parent: Some(parent),
                            control: !transparent,
                        });
                        let id = ctx.blocks.len() - 1;
                        ctx.stack.push(id);
                    }
                    depth += 1;
                }
                Ev::Close => {
                    depth = depth.saturating_sub(1);
                    let mut done = false;
                    if let Some(ctx) = cur.as_mut() {
                        ctx.live.retain(|g| match g.kind {
                            LiveKind::Bound { depth: d } | LiveKind::Transient { depth: d } => {
                                depth >= d
                            }
                            LiveKind::AwaitBrace { depth: d } | LiveKind::Scoped { depth: d } => {
                                depth > d
                            }
                        });
                        if depth == ctx.decl_depth {
                            done = true;
                        } else if ctx.stack.len() > 1 {
                            ctx.stack.pop();
                        }
                    }
                    if done {
                        out.fns.push(finish(cur.take().unwrap()));
                    }
                }
                Ev::Semi => {
                    if let Some(ctx) = cur.as_mut() {
                        ctx.live.retain(|g| match g.kind {
                            LiveKind::Transient { depth: d }
                            | LiveKind::AwaitBrace { depth: d } => d != depth,
                            _ => true,
                        });
                    }
                    if pending_fn.as_ref().is_some_and(|&(_, d, _)| d == depth) {
                        pending_fn = None; // trait method declaration
                    }
                }
                Ev::Class(class) => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Acquire { class }, held);
                        let (binding, bound) = binding_of(code);
                        ctx.live.push(Live {
                            class,
                            line: lineno,
                            binding,
                            kind: if bound {
                                LiveKind::Bound { depth }
                            } else {
                                LiveKind::Transient { depth }
                            },
                        });
                    }
                }
                Ev::Bind(bi) => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Binding { binding: bi }, held);
                        if cat.bindings[bi].scoped {
                            for &class in &cat.bindings[bi].acquires {
                                ctx.live.push(Live {
                                    class,
                                    line: lineno,
                                    binding: None,
                                    kind: LiveKind::AwaitBrace { depth },
                                });
                            }
                        }
                    }
                }
                Ev::Sync => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Sync, held);
                    }
                }
                Ev::Blocking(desc) => {
                    if let Some(ctx) = cur.as_mut() {
                        let mut exempt = Vec::new();
                        if OWN_GUARD_WAITS.contains(&desc) {
                            let args = stripped
                                .find(desc)
                                .map(|p| &stripped[p + desc.len()..])
                                .unwrap_or("");
                            for g in &ctx.live {
                                if let Some(b) = &g.binding {
                                    if !b.is_empty() && word_in(args, b) {
                                        exempt.push(g.class);
                                    }
                                }
                            }
                        }
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Blocking { desc, exempt }, held);
                    }
                }
                Ev::Marker => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::CommitMarker, held);
                    }
                }
                Ev::Mutation(mi) => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Mutation { mutation: mi }, held);
                    }
                }
                Ev::Drop(ident) => {
                    if let Some(ctx) = cur.as_mut() {
                        if !ident.is_empty() {
                            ctx.live
                                .retain(|g| g.binding.as_deref() != Some(ident.as_str()));
                        }
                    }
                }
                Ev::Call(name) => {
                    if let Some(ctx) = cur.as_mut() {
                        let held = snapshot(&ctx.live);
                        push_event(ctx, lineno, EventKind::Call { name }, held);
                    }
                }
            }
        }
    }
    Ok(out)
}

fn finish(ctx: FnCtx) -> FnFact {
    FnFact {
        name: ctx.name,
        line: ctx.line,
        blocks: ctx.blocks,
        events: ctx.events,
    }
}

fn push_event(ctx: &mut FnCtx, line: usize, kind: EventKind, held: Vec<HeldGuard>) {
    let block = *ctx.stack.last().unwrap();
    ctx.events.push(Event {
        line,
        block,
        kind,
        held,
    });
}

fn snapshot(live: &[Live]) -> Vec<HeldGuard> {
    live.iter()
        .map(|g| HeldGuard {
            class: g.class,
            line: g.line,
        })
        .collect()
}

/// `(binding, is_bound)` for an acquisition on a line: `let [mut] x = …`
/// and `x = …` (rebind) give a block-scoped guard; everything else is a
/// statement temporary.
fn binding_of(code: &str) -> (Option<String>, bool) {
    if let Some(rest) = code.strip_prefix("let ") {
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let ident: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        let b = if ident.is_empty() { None } else { Some(ident) };
        return (b, true);
    }
    let ident: String = code.chars().take_while(|&c| is_ident(c)).collect();
    if !ident.is_empty() {
        let rest = code[ident.len()..].trim_start();
        if rest.starts_with("= ") || rest.starts_with("=\t") {
            return (Some(ident), true);
        }
    }
    (None, false)
}

/// First `fn ` keyword position at a word boundary, or None.
fn find_fn_kw(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    for (p, _) in s.match_indices("fn ") {
        if p == 0 || !is_ident(b[p - 1] as char) {
            // Require an identifier to follow.
            if s[p + 3..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            {
                return Some(p);
            }
        }
    }
    None
}

/// Whole-word containment of `w` in `s`.
fn word_in(s: &str, w: &str) -> bool {
    let b = s.as_bytes();
    for (p, _) in s.match_indices(w) {
        let before = p == 0 || !is_ident(b[p - 1] as char);
        let after = p + w.len() >= s.len() || !is_ident(b[p + w.len()] as char);
        if before && after {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_strings_and_char_literals() {
        let mut ins = false;
        let s = strip("match c { '{' => x, _ => y } // brace", &mut ins);
        assert!(!s.contains("brace"));
        assert_eq!(s.matches('{').count(), 1, "char-literal brace blanked: {s}");
        let s = strip("let m = \"a { b ; c }\";", &mut ins);
        assert!(!s.contains("a {"), "string interior blanked: {s}");
        assert!(s.ends_with(';'));
    }

    #[test]
    fn strip_carries_multiline_strings() {
        let mut ins = false;
        let _ = strip("let x = \"start \\", &mut ins);
        assert!(ins, "backslash continuation keeps string open");
        let s = strip("  continues { here; }\"", &mut ins);
        assert!(!ins);
        assert!(
            !s.contains('{') && !s.contains(';'),
            "string body blanked: {s}"
        );
    }

    #[test]
    fn binding_forms() {
        assert_eq!(
            binding_of("let mut g = x.lock();"),
            (Some("g".into()), true)
        );
        assert_eq!(
            binding_of("let _log = x.lock();"),
            (Some("_log".into()), true)
        );
        assert_eq!(
            binding_of("g = self.state.lock();"),
            (Some("g".into()), true)
        );
        assert_eq!(binding_of("self.state.lock();"), (None, false));
        assert_eq!(
            binding_of("if self.txns.lock().is_empty() {"),
            (None, false)
        );
    }

    #[test]
    fn fn_keyword_detection() {
        assert!(find_fn_kw("pub fn commit(&mut self) {").is_some());
        assert!(find_fn_kw("    fn helper() -> bool {").is_some());
        assert!(find_fn_kw("pub(crate) const fn rank() -> u8 {").is_some());
        assert!(find_fn_kw("let f = baffn (x);").is_none());
        assert!(
            find_fn_kw("// fn in comment").is_some(),
            "comments stripped before call"
        );
    }

    #[test]
    fn word_in_is_word_bounded() {
        assert!(word_in("g.inner_mut(), deadline", "g"));
        assert!(!word_in("guard.inner_mut()", "g"));
        assert!(word_in("&mut g)", "g"));
    }
}
