//! The four rule families, run over the scanned fact base:
//!
//! * `lock-order` — every observed acquisition edge (directly, or through
//!   calls that transitively acquire) must lie in the transitive closure of
//!   the declared partial order; same-class double acquisition is a finding.
//! * `no-block-under-guard` — no blocking operation (directly, or through a
//!   call that may block) while a `no-block` class guard is live.
//! * `durability-dominator` — commit-point mutations must be dominated by a
//!   commit-record append *and* a sync (or by a call to a proven-durable
//!   function); direct commit-record appends must be post-dominated by a
//!   sync.
//! * `relaxed-ordering` — `Ordering::Relaxed` only inside `crates/obs`.
//!
//! Call-graph properties (transitive acquisitions, may-block, durability)
//! are propagated by name: a call site inherits the union over *all*
//! workspace functions of that name. For durability this is an ALL-defs
//! greatest fixpoint — a name counts as durable only while every definition
//! still does — so deleting the sync from one `commit` breaks every caller
//! that leaned on the name, which is exactly the CI pin the rule exists for.

use std::collections::{BTreeSet, HashMap};

use super::catalogue::Catalogue;
use super::scan::{EventKind, FileFacts, FnFact, PAT_RELAXED};
use super::Finding;

pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_NO_BLOCK: &str = "no-block-under-guard";
pub const RULE_DURABILITY: &str = "durability-dominator";
pub const RULE_RELAXED: &str = "relaxed-ordering";

pub fn apply(cat: &Catalogue, files: &[FileFacts], rules: &[&str]) -> Vec<Finding> {
    let mut fns: Vec<(usize, &FnFact)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for f in &file.fns {
            fns.push((fi, f));
        }
    }
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, (_, f)) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    // --- transitive acquisitions -----------------------------------------
    let mut acq_all: Vec<BTreeSet<usize>> = fns
        .iter()
        .map(|(_, f)| {
            let mut s = BTreeSet::new();
            for e in &f.events {
                match &e.kind {
                    EventKind::Acquire { class } => {
                        s.insert(*class);
                    }
                    EventKind::Binding { binding } => {
                        s.extend(cat.bindings[*binding].acquires.iter().copied());
                    }
                    _ => {}
                }
            }
            s
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for e in &fns[i].1.events {
                if let EventKind::Call { name } = &e.kind {
                    if let Some(defs) = by_name.get(name.as_str()) {
                        for &d in defs {
                            add.extend(acq_all[d].iter().copied());
                        }
                    }
                }
            }
            for c in add {
                changed |= acq_all[i].insert(c);
            }
        }
        if !changed {
            break;
        }
    }

    // --- may-block --------------------------------------------------------
    let mut blocking: Vec<bool> = fns
        .iter()
        .map(|(_, f)| {
            f.events.iter().any(|e| match &e.kind {
                EventKind::Blocking { .. } => true,
                EventKind::Binding { binding } => cat.bindings[*binding].blocking,
                _ => false,
            })
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if blocking[i] {
                continue;
            }
            let hit = fns[i].1.events.iter().any(|e| {
                if let EventKind::Call { name } = &e.kind {
                    by_name
                        .get(name.as_str())
                        .is_some_and(|defs| defs.iter().any(|&d| blocking[d]))
                } else {
                    false
                }
            });
            if hit {
                blocking[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // --- durable functions (greatest fixpoint, ALL defs per name) ---------
    let has_marker: Vec<bool> = fns
        .iter()
        .map(|(_, f)| {
            f.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::CommitMarker))
        })
        .collect();
    let has_sync: Vec<bool> = fns
        .iter()
        .map(|(_, f)| f.events.iter().any(|e| matches!(e.kind, EventKind::Sync)))
        .collect();
    let mut durable = vec![true; fns.len()];
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if !durable[i] {
                continue;
            }
            let name_durable = |n: &str| {
                by_name
                    .get(n)
                    .is_some_and(|defs| defs.iter().all(|&d| durable[d]))
            };
            let call_durable = fns[i].1.events.iter().any(|e| {
                if let EventKind::Call { name } = &e.kind {
                    name_durable(name)
                } else {
                    false
                }
            });
            let ok = call_durable || (has_marker[i] && has_sync[i]);
            if !ok {
                durable[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let name_durable = |n: &str| -> bool {
        by_name
            .get(n)
            .is_some_and(|defs| defs.iter().all(|&d| durable[d]))
    };

    let cname = |c: usize| cat.classes[c].name.as_str();
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut emit = |findings: &mut Vec<Finding>, f: Finding| {
        let key = format!("{}|{}|{}|{}", f.rule, f.file, f.line, f.message);
        if seen.insert(key) {
            findings.push(f);
        }
    };

    // --- lock-order --------------------------------------------------------
    if rules.contains(&RULE_LOCK_ORDER) {
        for &(fi, f) in &fns {
            let file = files[fi].file.as_str();
            for e in &f.events {
                // (acquired classes at this event, suffix for the chain)
                let acquired: Vec<(usize, Option<&str>)> = match &e.kind {
                    EventKind::Acquire { class } => vec![(*class, None)],
                    EventKind::Binding { binding } => cat.bindings[*binding]
                        .acquires
                        .iter()
                        .map(|&c| (c, Some(cat.bindings[*binding].pattern.as_str())))
                        .collect(),
                    EventKind::Call { name } => {
                        if e.held.is_empty() {
                            continue;
                        }
                        let mut cs: BTreeSet<usize> = BTreeSet::new();
                        if let Some(defs) = by_name.get(name.as_str()) {
                            for &d in defs {
                                cs.extend(acq_all[d].iter().copied());
                            }
                        }
                        cs.iter().map(|&c| (c, Some(name.as_str()))).collect()
                    }
                    _ => continue,
                };
                for (c, via) in acquired {
                    for h in &e.held {
                        let bad_double = h.class == c;
                        let bad_order = !bad_double && !cat.allowed[h.class][c];
                        if !bad_double && !bad_order {
                            continue;
                        }
                        let what = if bad_double {
                            format!("re-acquires `{}` while already held", cname(c))
                        } else {
                            format!(
                                "acquires `{}` while holding `{}`: edge `{}` -> `{}` is not in \
                                 the declared order (LOCKS.md)",
                                cname(c),
                                cname(h.class),
                                cname(h.class),
                                cname(c)
                            )
                        };
                        let what = match via {
                            Some(v) => format!("{what} (through `{v}`)"),
                            None => what,
                        };
                        let mut chain: Vec<String> = e
                            .held
                            .iter()
                            .map(|g| {
                                format!("`{}` acquired at {}:{}", cname(g.class), file, g.line)
                            })
                            .collect();
                        chain.push(match via {
                            Some(v) => format!(
                                "`{}` then acquired via `{}` at {}:{} in fn `{}`",
                                cname(c),
                                v,
                                file,
                                e.line,
                                f.name
                            ),
                            None => format!(
                                "`{}` then acquired at {}:{} in fn `{}`",
                                cname(c),
                                file,
                                e.line,
                                f.name
                            ),
                        });
                        emit(
                            &mut findings,
                            Finding {
                                rule: RULE_LOCK_ORDER,
                                file: file.to_string(),
                                line: e.line,
                                message: what,
                                chain,
                            },
                        );
                    }
                }
            }
        }
    }

    // --- no-block-under-guard ---------------------------------------------
    if rules.contains(&RULE_NO_BLOCK) {
        for &(fi, f) in &fns {
            let file = files[fi].file.as_str();
            for e in &f.events {
                let (desc, exempt): (String, &[usize]) = match &e.kind {
                    EventKind::Blocking { desc, exempt } => (format!("`{desc}`"), exempt),
                    EventKind::Binding { binding } if cat.bindings[*binding].blocking => {
                        (format!("call `{}`", cat.bindings[*binding].pattern), &[])
                    }
                    EventKind::Call { name } => {
                        let may_block = by_name
                            .get(name.as_str())
                            .is_some_and(|defs| defs.iter().any(|&d| blocking[d]));
                        if !may_block {
                            continue;
                        }
                        (format!("call to `{name}` (may block)"), &[])
                    }
                    _ => continue,
                };
                for h in &e.held {
                    if !cat.classes[h.class].no_block || exempt.contains(&h.class) {
                        continue;
                    }
                    emit(
                        &mut findings,
                        Finding {
                            rule: RULE_NO_BLOCK,
                            file: file.to_string(),
                            line: e.line,
                            message: format!(
                                "blocking operation {desc} while `{}` (no-block) is held",
                                cname(h.class)
                            ),
                            chain: vec![format!(
                                "`{}` acquired at {}:{} in fn `{}`",
                                cname(h.class),
                                file,
                                h.line,
                                f.name
                            )],
                        },
                    );
                }
            }
        }
    }

    // --- durability-dominator ----------------------------------------------
    if rules.contains(&RULE_DURABILITY) {
        for &(fi, f) in &fns {
            let file = files[fi].file.as_str();
            let mut markers: Vec<usize> = Vec::new();
            let mut syncs: Vec<usize> = Vec::new();
            let mut durable_calls: Vec<usize> = Vec::new();
            for (i, e) in f.events.iter().enumerate() {
                match &e.kind {
                    EventKind::CommitMarker => markers.push(i),
                    EventKind::Sync => syncs.push(i),
                    EventKind::Call { name } if name_durable(name) => durable_calls.push(i),
                    _ => {}
                }
            }
            for (mi, e) in f.events.iter().enumerate() {
                if let EventKind::Mutation { mutation } = &e.kind {
                    let dom = |idxs: &[usize]| idxs.iter().any(|&x| f.dominates(x, mi));
                    let has_m = dom(&markers) || dom(&durable_calls);
                    let has_s = dom(&syncs) || dom(&durable_calls);
                    if has_m && has_s {
                        continue;
                    }
                    let missing = match (has_m, has_s) {
                        (false, false) => "a commit-record append or a durable sync",
                        (false, true) => "a commit-record append",
                        (true, false) => "a durable sync",
                        _ => unreachable!(),
                    };
                    emit(
                        &mut findings,
                        Finding {
                            rule: RULE_DURABILITY,
                            file: file.to_string(),
                            line: e.line,
                            message: format!(
                                "commit-point mutation `{}` in fn `{}` is not dominated by \
                                 {missing}",
                                cat.mutations[*mutation].pattern, f.name
                            ),
                            chain: vec![format!(
                                "no dominating durability event on some path to {}:{}",
                                file, e.line
                            )],
                        },
                    );
                }
            }
            for &a in &markers {
                let post = syncs
                    .iter()
                    .chain(durable_calls.iter())
                    .any(|&s| f.postdominates(s, a));
                if !post {
                    emit(
                        &mut findings,
                        Finding {
                            rule: RULE_DURABILITY,
                            file: file.to_string(),
                            line: f.events[a].line,
                            message: format!(
                                "commit-record append in fn `{}` is not followed by a sync on \
                                 every path",
                                f.name
                            ),
                            chain: vec![format!(
                                "append at {}:{} has no post-dominating sync",
                                file, f.events[a].line
                            )],
                        },
                    );
                }
            }
        }
    }

    // --- relaxed-ordering ---------------------------------------------------
    if rules.contains(&RULE_RELAXED) {
        for file in files {
            for &line in &file.relaxed {
                emit(
                    &mut findings,
                    Finding {
                        rule: RULE_RELAXED,
                        file: file.file.clone(),
                        line,
                        message: format!(
                            "atomic uses `{PAT_RELAXED}` outside `crates/obs`; state the \
                             intended ordering (Acquire/Release/AcqRel or SeqCst)"
                        ),
                        chain: Vec::new(),
                    },
                );
            }
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}
