//! Parser for the `LOCKS.md` lock-class catalogue.
//!
//! The catalogue is markdown, read the same way `METRICS.md` is read by the
//! `metric-catalogue` lint: only table rows / list items inside the four
//! `##` sections matter, and within a cell only the backticked spans are
//! values — everything else is commentary. See `LOCKS.md` at the workspace
//! root for the format contract.

use std::fs;
use std::io;
use std::path::Path;

/// One declared lock class.
#[derive(Debug, Clone)]
pub struct LockClass {
    /// Class name, e.g. `txn-stripe`.
    pub name: String,
    /// Source patterns whose presence on a line is an acquisition.
    pub patterns: Vec<String>,
    /// Workspace-relative path prefixes the patterns apply under.
    pub scopes: Vec<String>,
    /// No blocking operation may run while a guard of this class is live.
    pub no_block: bool,
}

/// A call pattern declared to acquire classes on the caller's behalf.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Source pattern of the call site.
    pub pattern: String,
    /// Path prefixes the pattern applies under.
    pub scopes: Vec<String>,
    /// The call itself may block.
    pub blocking: bool,
    /// Guards live for the closure argument (`.with_ready(`-style) rather
    /// than released before the call returns.
    pub scoped: bool,
    /// Indices into [`Catalogue::classes`].
    pub acquires: Vec<usize>,
}

/// A commit-point mutation pattern for the durability-dominator rule.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Source pattern of the mutation site.
    pub pattern: String,
    /// Path prefixes the pattern applies under.
    pub scopes: Vec<String>,
}

/// The parsed, validated catalogue.
#[derive(Debug)]
pub struct Catalogue {
    /// Declared classes, in file order.
    pub classes: Vec<LockClass>,
    /// Declared order edges after wildcard expansion, as class indices.
    pub order: Vec<(usize, usize)>,
    /// Transitive closure of `order`: `allowed[a][b]` ⇔ `b` may be acquired
    /// while `a` is held.
    pub allowed: Vec<Vec<bool>>,
    /// Declared call-site bindings.
    pub bindings: Vec<Binding>,
    /// Declared commit-point mutations.
    pub mutations: Vec<Mutation>,
}

impl Catalogue {
    /// Index of a class by name.
    pub fn class_idx(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }
}

/// Read and validate `<root>/LOCKS.md`. Errors (missing file, unknown class
/// name, cyclic declared order) are hard failures — an unparseable catalogue
/// must fail CI, not silently disable the rules.
pub fn load(root: &Path) -> io::Result<Catalogue> {
    let path = root.join("LOCKS.md");
    let text = fs::read_to_string(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("cannot read lock catalogue {}: {e}", path.display()),
        )
    })?;
    parse(&text).map_err(|msg| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {msg}", path.display()),
        )
    })
}

/// Backticked spans in `s`, in order.
fn ticked(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut parts = s.split('`');
    parts.next(); // before the first backtick
    while let (Some(span), next) = (parts.next(), parts.next()) {
        if !span.is_empty() {
            out.push(span.to_string());
        }
        if next.is_none() {
            break;
        }
    }
    out
}

/// Cells of a markdown table row (`| a | b |` → `["a", "b"]`), or `None`
/// when `line` is not a row. Header and separator rows are rows too — the
/// callers skip cells without backticks.
fn row_cells(line: &str) -> Option<Vec<String>> {
    let t = line.trim();
    let body = t.strip_prefix('|')?;
    let body = body.strip_suffix('|').unwrap_or(body);
    Some(body.split('|').map(|c| c.trim().to_string()).collect())
}

fn parse(text: &str) -> Result<Catalogue, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Classes,
        Order,
        Bindings,
        Durability,
    }
    let mut section = Section::None;
    let mut classes: Vec<LockClass> = Vec::new();
    let mut order_decl: Vec<(String, String)> = Vec::new();
    let mut binding_rows: Vec<(String, Vec<String>, Vec<String>)> = Vec::new();
    let mut mutations: Vec<Mutation> = Vec::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if let Some(head) = line.strip_prefix("## ") {
            section = match head.trim() {
                "Classes" => Section::Classes,
                "Order" => Section::Order,
                "Bindings" => Section::Bindings,
                "Durability" => Section::Durability,
                _ => Section::None,
            };
            continue;
        }
        match section {
            Section::Classes => {
                let Some(cells) = row_cells(line) else {
                    continue;
                };
                if cells.len() < 3 || ticked(&cells[0]).is_empty() {
                    continue; // header / separator
                }
                let names = ticked(&cells[0]);
                let patterns = ticked(&cells[1]);
                let scopes = ticked(&cells[2]);
                if names.len() != 1 {
                    return Err(format!("line {lineno}: class row needs exactly one name"));
                }
                if patterns.is_empty() || scopes.is_empty() {
                    return Err(format!(
                        "line {lineno}: class `{}` needs patterns and a scope",
                        names[0]
                    ));
                }
                let attrs = cells.get(3).map(|c| ticked(c)).unwrap_or_default();
                classes.push(LockClass {
                    name: names[0].clone(),
                    patterns,
                    scopes,
                    no_block: attrs.iter().any(|a| a == "no-block"),
                });
            }
            Section::Order => {
                let t = line.trim();
                if !t.starts_with('-') {
                    continue;
                }
                let vals = ticked(t);
                if vals.len() < 2 {
                    continue;
                }
                if !t.contains('<') {
                    return Err(format!("line {lineno}: order item must be `a` < `b`"));
                }
                order_decl.push((vals[0].clone(), vals[1].clone()));
            }
            Section::Bindings => {
                let Some(cells) = row_cells(line) else {
                    continue;
                };
                if cells.len() < 3 || ticked(&cells[0]).is_empty() {
                    continue;
                }
                let pats = ticked(&cells[0]);
                if pats.len() != 1 {
                    return Err(format!(
                        "line {lineno}: binding row needs exactly one pattern"
                    ));
                }
                binding_rows.push((pats[0].clone(), ticked(&cells[1]), ticked(&cells[2])));
            }
            Section::Durability => {
                let Some(cells) = row_cells(line) else {
                    continue;
                };
                if cells.len() < 2 || ticked(&cells[0]).is_empty() {
                    continue;
                }
                let pats = ticked(&cells[0]);
                let scopes = ticked(&cells[1]);
                if pats.len() != 1 || scopes.is_empty() {
                    return Err(format!(
                        "line {lineno}: durability row needs one pattern and a scope"
                    ));
                }
                mutations.push(Mutation {
                    pattern: pats[0].clone(),
                    scopes,
                });
            }
            Section::None => {}
        }
    }

    if classes.is_empty() {
        return Err("no classes declared".into());
    }
    let idx = |name: &str| -> Result<usize, String> {
        classes
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| format!("unknown class `{name}`"))
    };

    // Wildcard expansion: `* < c` means every class except wildcard targets
    // themselves (two sinks must not be forced into a cycle with each other).
    let wildcard_targets: Vec<usize> = order_decl
        .iter()
        .filter(|(a, _)| a == "*")
        .map(|(_, b)| idx(b))
        .collect::<Result<_, _>>()?;
    let mut order: Vec<(usize, usize)> = Vec::new();
    for (a, b) in &order_decl {
        let b = idx(b)?;
        if a == "*" {
            for i in 0..classes.len() {
                if i != b && !wildcard_targets.contains(&i) {
                    order.push((i, b));
                }
            }
        } else {
            order.push((idx(a)?, b));
        }
    }
    order.sort_unstable();
    order.dedup();

    // Transitive closure + cycle check.
    let n = classes.len();
    let mut allowed = vec![vec![false; n]; n];
    for &(a, b) in &order {
        allowed[a][b] = true;
    }
    for k in 0..n {
        let reach_k = allowed[k].clone();
        for row in allowed.iter_mut() {
            if row[k] {
                for (dst, &via_k) in row.iter_mut().zip(&reach_k) {
                    if via_k {
                        *dst = true;
                    }
                }
            }
        }
    }
    for (a, row) in allowed.iter().enumerate() {
        if row[a] {
            return Err(format!(
                "declared order has a cycle through `{}`",
                classes[a].name
            ));
        }
    }

    let mut bindings = Vec::new();
    for (pattern, scopes, effects) in binding_rows {
        let mut b = Binding {
            pattern,
            scopes,
            blocking: false,
            scoped: false,
            acquires: Vec::new(),
        };
        for e in &effects {
            match e.as_str() {
                "blocking" => b.blocking = true,
                "scoped" => b.scoped = true,
                other => b.acquires.push(idx(other)?),
            }
        }
        if b.scopes.is_empty() {
            return Err(format!("binding `{}` needs a scope", b.pattern));
        }
        bindings.push(b);
    }

    Ok(Catalogue {
        classes,
        order,
        allowed,
        bindings,
        mutations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sample
## Classes
| class | patterns | scope | attrs |
|---|---|---|---|
| `a-lock` | `.alpha()` | `crates/x/src` | `no-block` |
| `b-lock` | `.beta()` `.beta_mut()` | `crates/x/src` | |
| `sink` | `.sink()` | `crates` | `no-block` |
## Order
- `a-lock` < `b-lock` — because
- `*` < `sink`
## Bindings
| pattern | scope | effects |
|---|---|---|
| `.combo(` | `crates/x/src` | `blocking` `a-lock` `b-lock` |
## Durability
| pattern | scope |
|---|---|
| `.mutate(` | `crates/x/src` |
";

    #[test]
    fn parses_all_sections() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.classes.len(), 3);
        assert!(c.classes[0].no_block);
        assert!(!c.classes[1].no_block);
        assert_eq!(c.classes[1].patterns.len(), 2);
        let (a, b, s) = (0, 1, 2);
        assert!(c.allowed[a][b]);
        assert!(!c.allowed[b][a]);
        // Wildcard: both non-sink classes precede the sink; sink not self-edged.
        assert!(c.allowed[a][s] && c.allowed[b][s]);
        assert!(!c.allowed[s][s]);
        assert_eq!(c.bindings.len(), 1);
        assert!(c.bindings[0].blocking);
        assert_eq!(c.bindings[0].acquires, vec![a, b]);
        assert_eq!(c.mutations.len(), 1);
    }

    #[test]
    fn transitive_closure_is_applied() {
        let text = SAMPLE.replace(
            "- `*` < `sink`",
            "- `b-lock` < `sink`\n- `x` < `y`", // second line ignored: no backtick pair? keep valid
        );
        // Replace the bogus extra line with nothing; build a 3-chain instead.
        let text = text.replace("- `x` < `y`", "");
        let c = parse(&text).unwrap();
        assert!(c.allowed[0][2], "a < b < sink implies a < sink");
    }

    #[test]
    fn unknown_class_in_order_is_an_error() {
        let text = SAMPLE.replace("- `a-lock` < `b-lock` — because", "- `nope` < `b-lock`");
        assert!(parse(&text).unwrap_err().contains("unknown class"));
    }

    #[test]
    fn declared_cycle_is_an_error() {
        let text = SAMPLE.replace("- `*` < `sink`", "- `b-lock` < `a-lock`");
        assert!(parse(&text).unwrap_err().contains("cycle"));
    }

    #[test]
    fn same_class_edge_is_a_cycle() {
        let text = SAMPLE.replace("- `*` < `sink`", "- `a-lock` < `a-lock`");
        assert!(parse(&text).unwrap_err().contains("cycle"));
    }
}
