//! Fig 1 / Fig 5 protocol conformance checking.
//!
//! The paper specifies the client as a state machine (Fig 1: Send →
//! Receive → process → commit, plus the Fig 2 resynchronization paths) and
//! the server as the dequeue → process → enqueue-reply → commit loop of
//! Fig 5. This module encodes both transition relations **as data**
//! ([`CLIENT_TABLE`], [`SERVER_TABLE`]) and provides:
//!
//! * a lightweight observer hook ([`emit_client`] / [`emit_server`]) that
//!   `rrq_core`'s clerk and server loop call at each transition — one
//!   relaxed atomic load when no observer is installed;
//! * a [`Conformance`] checker that replays observed events against the
//!   tables (plus the payload guards the tables cannot express, e.g. "the
//!   reply's rid must match the outstanding request") and records every
//!   violation together with the offending entity's full event trace.
//!
//! A `Connect` is legal from *any* state: a crash is indistinguishable
//! from a slow client, so the protocol's only entry point after failure is
//! resynchronization. The checker validates the resync triple against the
//! history it has itself observed: `s_rid` must be the last acknowledged
//! `Send` and `r_rid` the last delivered reply (both `None` after a clean
//! `Disconnect`, which destroys the registration).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// An observable client (clerk) transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// `Connect` returned the resynchronization triple `(s_rid, r_rid)`.
    Connect {
        /// Tag of the last acknowledged `Send`, if any.
        s_rid: Option<String>,
        /// Tag of the last delivered reply, if any.
        r_rid: Option<String>,
    },
    /// A request was enqueued. `acked` is true when the send was tagged
    /// (recoverable); an unacknowledged send leaves no resync trace.
    Send {
        /// The request id.
        rid: String,
        /// Whether the send updated the stable registration tag.
        acked: bool,
    },
    /// A reply was received (and the receive tagged).
    Receive {
        /// Rid of the request the reply answers.
        rid: String,
    },
    /// The already-delivered reply was obtained again (Fig 2 line 8).
    Rereceive {
        /// Rid of the request the reply answers.
        rid: String,
    },
    /// The client deregistered, destroying its resynchronization state.
    Disconnect,
    /// An operation failed client-side (network error): whether it took
    /// effect at the QM is unknown — an acked `Send` or a `Receive` that
    /// timed out on the wire may still have committed server-side and
    /// advanced the stable tags. The client's state does not change, but the
    /// checker can no longer predict the next resync triple.
    OpFailed {
        /// Which operation failed (e.g. "send", "receive").
        op: String,
    },
}

impl ClientEvent {
    /// The table-lookup kind of this event.
    pub fn kind(&self) -> ClientEventKind {
        match self {
            ClientEvent::Connect { .. } => ClientEventKind::Connect,
            ClientEvent::Send { .. } => ClientEventKind::Send,
            ClientEvent::Receive { .. } => ClientEventKind::Receive,
            ClientEvent::Rereceive { .. } => ClientEventKind::Rereceive,
            ClientEvent::Disconnect => ClientEventKind::Disconnect,
            ClientEvent::OpFailed { .. } => ClientEventKind::OpFailed,
        }
    }
}

/// Client event discriminant, used in [`CLIENT_TABLE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientEventKind {
    /// See [`ClientEvent::Connect`].
    Connect,
    /// See [`ClientEvent::Send`].
    Send,
    /// See [`ClientEvent::Receive`].
    Receive,
    /// See [`ClientEvent::Rereceive`].
    Rereceive,
    /// See [`ClientEvent::Disconnect`].
    Disconnect,
    /// See [`ClientEvent::OpFailed`].
    OpFailed,
}

/// An observable server-loop transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// A request was dequeued and decoded.
    Dequeue {
        /// The request id.
        rid: String,
    },
    /// A malformed element was dequeued; it will be consumed (§3: a
    /// request that cannot be parsed must not poison the queue).
    DropMalformed,
    /// The reply (final, intermediate, or rejection) was enqueued.
    Reply {
        /// Rid of the request being answered.
        rid: String,
    },
    /// The request was forwarded to the next queue instead of answered.
    Forward {
        /// Rid of the forwarded request.
        rid: String,
    },
    /// The server transaction committed.
    Commit,
    /// The server transaction aborted (the request returns to its queue).
    Abort,
}

impl ServerEvent {
    /// The table-lookup kind of this event.
    pub fn kind(&self) -> ServerEventKind {
        match self {
            ServerEvent::Dequeue { .. } => ServerEventKind::Dequeue,
            ServerEvent::DropMalformed => ServerEventKind::DropMalformed,
            ServerEvent::Reply { .. } => ServerEventKind::Reply,
            ServerEvent::Forward { .. } => ServerEventKind::Forward,
            ServerEvent::Commit => ServerEventKind::Commit,
            ServerEvent::Abort => ServerEventKind::Abort,
        }
    }
}

/// Server event discriminant, used in [`SERVER_TABLE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerEventKind {
    /// See [`ServerEvent::Dequeue`].
    Dequeue,
    /// See [`ServerEvent::DropMalformed`].
    DropMalformed,
    /// See [`ServerEvent::Reply`].
    Reply,
    /// See [`ServerEvent::Forward`].
    Forward,
    /// See [`ServerEvent::Commit`].
    Commit,
    /// See [`ServerEvent::Abort`].
    Abort,
}

// ---------------------------------------------------------------------
// Transition tables (the Fig 1 / Fig 5 diagrams as data)
// ---------------------------------------------------------------------

/// Fig 1 client states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// No registration (before first `Connect` or after `Disconnect`).
    Disconnected,
    /// Connected with no request in flight.
    Fresh,
    /// A request was sent; its reply is not yet delivered.
    Outstanding,
    /// The last request's reply was delivered.
    Delivered,
}

/// Fig 5 server states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Blocked on `Dequeue`.
    Waiting,
    /// A request is being processed under the server transaction.
    Processing,
    /// The reply (or forward) is enqueued; only commit/abort remain.
    ReadyToCommit,
    /// Consuming a malformed element.
    Dropping,
}

/// Fig 1 transition relation. A target of `None` means the next state is
/// computed from the event payload: `Connect`, whose resync triple decides
/// between `Fresh`, `Outstanding`, and `Delivered` (Fig 2 lines 2–11), and
/// `OpFailed`, which leaves the state unchanged.
pub const CLIENT_TABLE: &[(ClientState, ClientEventKind, Option<ClientState>)] = &[
    // Connect is the recovery entry point: legal from every state.
    (ClientState::Disconnected, ClientEventKind::Connect, None),
    (ClientState::Fresh, ClientEventKind::Connect, None),
    (ClientState::Outstanding, ClientEventKind::Connect, None),
    (ClientState::Delivered, ClientEventKind::Connect, None),
    // A network-failed operation can happen anywhere and moves nothing.
    (ClientState::Disconnected, ClientEventKind::OpFailed, None),
    (ClientState::Fresh, ClientEventKind::OpFailed, None),
    (ClientState::Outstanding, ClientEventKind::OpFailed, None),
    (ClientState::Delivered, ClientEventKind::OpFailed, None),
    // One request at a time: Send only with no reply pending.
    (
        ClientState::Fresh,
        ClientEventKind::Send,
        Some(ClientState::Outstanding),
    ),
    (
        ClientState::Delivered,
        ClientEventKind::Send,
        Some(ClientState::Outstanding),
    ),
    (
        ClientState::Outstanding,
        ClientEventKind::Receive,
        Some(ClientState::Delivered),
    ),
    // Rereceive re-delivers an already-delivered reply (idempotent).
    (
        ClientState::Delivered,
        ClientEventKind::Rereceive,
        Some(ClientState::Delivered),
    ),
    // Disconnect only with no request in flight.
    (
        ClientState::Fresh,
        ClientEventKind::Disconnect,
        Some(ClientState::Disconnected),
    ),
    (
        ClientState::Delivered,
        ClientEventKind::Disconnect,
        Some(ClientState::Disconnected),
    ),
];

/// Fig 5 transition relation (all targets are static).
pub const SERVER_TABLE: &[(ServerState, ServerEventKind, ServerState)] = &[
    (
        ServerState::Waiting,
        ServerEventKind::Dequeue,
        ServerState::Processing,
    ),
    (
        ServerState::Waiting,
        ServerEventKind::DropMalformed,
        ServerState::Dropping,
    ),
    (
        ServerState::Dropping,
        ServerEventKind::Commit,
        ServerState::Waiting,
    ),
    (
        ServerState::Processing,
        ServerEventKind::Reply,
        ServerState::ReadyToCommit,
    ),
    (
        ServerState::Processing,
        ServerEventKind::Forward,
        ServerState::ReadyToCommit,
    ),
    // The handler failed (or deadlocked): the whole transaction unwinds
    // and the request reappears on its queue.
    (
        ServerState::Processing,
        ServerEventKind::Abort,
        ServerState::Waiting,
    ),
    (
        ServerState::ReadyToCommit,
        ServerEventKind::Commit,
        ServerState::Waiting,
    ),
    (
        ServerState::ReadyToCommit,
        ServerEventKind::Abort,
        ServerState::Waiting,
    ),
];

// ---------------------------------------------------------------------
// Observer hook
// ---------------------------------------------------------------------

/// Receives every protocol event emitted by instrumented code.
pub trait ProtocolObserver: Send + Sync {
    /// A clerk transition for client `client`.
    fn on_client(&self, client: &str, event: ClientEvent);
    /// A server-loop transition for server `server`.
    fn on_server(&self, server: &str, event: ServerEvent);
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Arc<dyn ProtocolObserver>>> = Mutex::new(None);
static OBS_SESSION: Mutex<()> = Mutex::new(());

fn lock_poison_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Emit a client event to the installed observer, if any.
pub fn emit_client(client: &str, event: ClientEvent) {
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let obs = lock_poison_ok(&OBSERVER).clone();
    if let Some(o) = obs {
        o.on_client(client, event);
    }
}

/// Emit a server event to the installed observer, if any.
pub fn emit_server(server: &str, event: ServerEvent) {
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let obs = lock_poison_ok(&OBSERVER).clone();
    if let Some(o) = obs {
        o.on_server(server, event);
    }
}

/// RAII installation of an observer; drop uninstalls it. Sessions
/// serialize on a process-wide mutex so parallel tests cannot see each
/// other's traffic.
pub struct ObserverSession {
    _guard: MutexGuard<'static, ()>,
}

/// Install `observer` for the lifetime of the returned session.
pub fn install(observer: Arc<dyn ProtocolObserver>) -> ObserverSession {
    let guard = lock_poison_ok(&OBS_SESSION);
    *lock_poison_ok(&OBSERVER) = Some(observer);
    ACTIVE.store(true, Ordering::SeqCst);
    ObserverSession { _guard: guard }
}

impl Drop for ObserverSession {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *lock_poison_ok(&OBSERVER) = None;
    }
}

// ---------------------------------------------------------------------
// Conformance checker
// ---------------------------------------------------------------------

const TRACE_CAP: usize = 256;

/// A protocol violation with the offending entity's event trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Client or server identity.
    pub entity: String,
    /// What went wrong (state, event, failed guard).
    pub detail: String,
    /// The entity's recorded event trace (most recent last).
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.entity, self.detail)?;
        writeln!(f, "  event trace ({} entries):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

struct ClientMachine {
    state: ClientState,
    outstanding: Option<String>,
    delivered: Option<String>,
    last_acked_send: Option<String>,
    last_receive: Option<String>,
    // Set by the first observed Connect: from then on resync triples must
    // agree with our own bookkeeping.
    tags_known: bool,
    trace: Vec<String>,
    dropped: u64,
}

impl ClientMachine {
    fn new() -> Self {
        ClientMachine {
            state: ClientState::Disconnected,
            outstanding: None,
            delivered: None,
            last_acked_send: None,
            last_receive: None,
            tags_known: false,
            trace: Vec::new(),
            dropped: 0,
        }
    }
}

struct ServerMachine {
    state: ServerState,
    current: Option<String>,
    trace: Vec<String>,
    dropped: u64,
}

impl ServerMachine {
    fn new() -> Self {
        ServerMachine {
            state: ServerState::Waiting,
            current: None,
            trace: Vec::new(),
            dropped: 0,
        }
    }
}

#[derive(Default)]
struct ConfState {
    clients: HashMap<String, ClientMachine>,
    servers: HashMap<String, ServerMachine>,
    violations: Vec<Violation>,
    client_events: u64,
    server_events: u64,
}

/// Validates observed traces against [`CLIENT_TABLE`] / [`SERVER_TABLE`].
#[derive(Default)]
pub struct Conformance {
    inner: Mutex<ConfState>,
}

fn push_trace(trace: &mut Vec<String>, dropped: &mut u64, line: String) {
    if trace.len() >= TRACE_CAP {
        trace.remove(0);
        *dropped += 1;
    }
    trace.push(line);
}

impl Conformance {
    /// Create a checker and install it; events flow until the session
    /// guard drops.
    pub fn install() -> (Arc<Conformance>, ObserverSession) {
        let checker = Arc::new(Conformance::default());
        let session = install(Arc::clone(&checker) as Arc<dyn ProtocolObserver>);
        (checker, session)
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        lock_poison_ok(&self.inner).violations.clone()
    }

    /// Forget every tracked machine, violation, and counter while staying
    /// installed. Sweeps that run many independent scenarios reuse one
    /// observer session (installation takes a process-wide lock) and call
    /// this between runs so state from one scenario cannot leak into the
    /// verdict of the next.
    pub fn reset(&self) {
        *lock_poison_ok(&self.inner) = ConfState::default();
    }

    /// `(client_events, server_events)` observed — lets tests assert the
    /// run was not vacuously clean.
    pub fn events_seen(&self) -> (u64, u64) {
        let g = lock_poison_ok(&self.inner);
        (g.client_events, g.server_events)
    }

    /// Panic with every violation (and its trace) if any was recorded.
    pub fn assert_conformant(&self) {
        let violations = self.violations();
        if !violations.is_empty() {
            let mut msg = format!("{} protocol violation(s):\n", violations.len());
            for v in &violations {
                msg.push_str(&format!("{v}\n"));
            }
            panic!("{msg}");
        }
    }

    fn violate(st: &mut ConfState, entity: &str, detail: String, trace: Vec<String>) {
        st.violations.push(Violation {
            entity: entity.to_string(),
            detail,
            trace,
        });
    }
}

impl ProtocolObserver for Conformance {
    fn on_client(&self, client: &str, event: ClientEvent) {
        let mut g = lock_poison_ok(&self.inner);
        g.client_events += 1;
        let m = g
            .clients
            .entry(client.to_string())
            .or_insert_with(ClientMachine::new);
        let line = format!("[{:?}] {:?}", m.state, event);
        push_trace(&mut m.trace, &mut m.dropped, line);

        let row = CLIENT_TABLE
            .iter()
            .find(|(s, k, _)| *s == m.state && *k == event.kind());
        let Some((_, _, target)) = row else {
            let detail = format!("illegal client event {:?} in state {:?}", event, m.state);
            let trace = m.trace.clone();
            Conformance::violate(&mut g, client, detail, trace);
            return;
        };
        let target = *target;

        // Payload guards and bookkeeping the table cannot express.
        let mut guard_failure: Option<String> = None;
        let mut next = target;
        match &event {
            ClientEvent::Connect { s_rid, r_rid } => {
                if m.tags_known {
                    if *s_rid != m.last_acked_send {
                        guard_failure = Some(format!(
                            "resync s_rid {:?} != last acked send {:?}",
                            s_rid, m.last_acked_send
                        ));
                    } else if *r_rid != m.last_receive {
                        guard_failure = Some(format!(
                            "resync r_rid {:?} != last delivered reply {:?}",
                            r_rid, m.last_receive
                        ));
                    }
                }
                m.tags_known = true;
                m.last_acked_send = s_rid.clone();
                m.last_receive = r_rid.clone();
                // Fig 2 lines 2–11: the triple decides where we resume.
                next = Some(match (s_rid, r_rid) {
                    (None, _) => {
                        m.outstanding = None;
                        m.delivered = None;
                        ClientState::Fresh
                    }
                    (Some(s), Some(r)) if s == r => {
                        m.outstanding = None;
                        m.delivered = Some(s.clone());
                        ClientState::Delivered
                    }
                    (Some(s), _) => {
                        m.outstanding = Some(s.clone());
                        m.delivered = None;
                        ClientState::Outstanding
                    }
                });
            }
            ClientEvent::Send { rid, acked } => {
                m.outstanding = Some(rid.clone());
                if *acked {
                    m.last_acked_send = Some(rid.clone());
                } else {
                    // A one-way send may or may not have reached the queue:
                    // the next resync triple cannot be predicted.
                    m.tags_known = false;
                }
            }
            ClientEvent::Receive { rid } => {
                if m.outstanding.as_ref() != Some(rid) {
                    guard_failure = Some(format!(
                        "received reply for {:?} but outstanding request is {:?}",
                        rid, m.outstanding
                    ));
                } else {
                    m.outstanding = None;
                    m.delivered = Some(rid.clone());
                    m.last_receive = Some(rid.clone());
                }
            }
            ClientEvent::Rereceive { rid } => {
                if m.delivered.as_ref() != Some(rid) {
                    guard_failure = Some(format!(
                        "re-received reply for {:?} but delivered reply is {:?}",
                        rid, m.delivered
                    ));
                }
            }
            ClientEvent::Disconnect => {
                // Deregistration destroys the resync state.
                m.outstanding = None;
                m.delivered = None;
                m.last_acked_send = None;
                m.last_receive = None;
            }
            ClientEvent::OpFailed { .. } => {
                // The operation may or may not have committed at the QM;
                // the next Connect's triple is unpredictable from here.
                m.tags_known = false;
            }
        }

        if let Some(why) = guard_failure {
            let detail = format!(
                "client guard failed on {:?} in state {:?}: {}",
                event, m.state, why
            );
            let trace = m.trace.clone();
            Conformance::violate(&mut g, client, detail, trace);
            return;
        }
        if let Some(next) = next {
            m.state = next;
        }
    }

    fn on_server(&self, server: &str, event: ServerEvent) {
        let mut g = lock_poison_ok(&self.inner);
        g.server_events += 1;
        let m = g
            .servers
            .entry(server.to_string())
            .or_insert_with(ServerMachine::new);
        let line = format!("[{:?}] {:?}", m.state, event);
        push_trace(&mut m.trace, &mut m.dropped, line);

        let row = SERVER_TABLE
            .iter()
            .find(|(s, k, _)| *s == m.state && *k == event.kind());
        let Some((_, _, target)) = row else {
            let detail = format!("illegal server event {:?} in state {:?}", event, m.state);
            let trace = m.trace.clone();
            Conformance::violate(&mut g, server, detail, trace);
            return;
        };
        let target = *target;

        let mut guard_failure: Option<String> = None;
        match &event {
            ServerEvent::Dequeue { rid } => m.current = Some(rid.clone()),
            ServerEvent::Reply { rid } | ServerEvent::Forward { rid } => {
                if m.current.as_ref() != Some(rid) {
                    guard_failure = Some(format!(
                        "answered {:?} but the dequeued request is {:?}",
                        rid, m.current
                    ));
                }
            }
            ServerEvent::Commit | ServerEvent::Abort => m.current = None,
            ServerEvent::DropMalformed => {}
        }

        if let Some(why) = guard_failure {
            let detail = format!(
                "server guard failed on {:?} in state {:?}: {}",
                event, m.state, why
            );
            let trace = m.trace.clone();
            Conformance::violate(&mut g, server, detail, trace);
            return;
        }
        m.state = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_seq(events: &[ClientEvent]) -> Vec<Violation> {
        let c = Conformance::default();
        for e in events {
            c.on_client("c1", e.clone());
        }
        c.violations()
    }

    fn server_seq(events: &[ServerEvent]) -> Vec<Violation> {
        let c = Conformance::default();
        for e in events {
            c.on_server("s1", e.clone());
        }
        c.violations()
    }

    #[test]
    fn happy_path_client_is_clean() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Receive { rid: "c1:1".into() },
            ClientEvent::Send {
                rid: "c1:2".into(),
                acked: true,
            },
            ClientEvent::Receive { rid: "c1:2".into() },
            ClientEvent::Disconnect,
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crash_resync_to_outstanding_is_clean() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            // crash: no Receive, no Disconnect — next incarnation resyncs.
            ClientEvent::Connect {
                s_rid: Some("c1:1".into()),
                r_rid: None,
            },
            ClientEvent::Receive { rid: "c1:1".into() },
            ClientEvent::Connect {
                s_rid: Some("c1:1".into()),
                r_rid: Some("c1:1".into()),
            },
            ClientEvent::Rereceive { rid: "c1:1".into() },
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn receive_without_send_is_flagged() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Receive { rid: "c1:1".into() },
        ]);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].detail.contains("illegal client event"),
            "{}",
            v[0].detail
        );
        // The violation carries the offending trace.
        assert_eq!(v[0].trace.len(), 2);
    }

    #[test]
    fn double_send_is_flagged() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Send {
                rid: "c1:2".into(),
                acked: true,
            },
        ]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn disconnect_with_outstanding_request_is_flagged() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Disconnect,
        ]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn lying_resync_triple_is_flagged() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Connect {
                s_rid: Some("c1:9".into()),
                r_rid: None,
            },
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("s_rid"), "{}", v[0].detail);
    }

    #[test]
    fn wrong_reply_rid_is_flagged() {
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Receive { rid: "c1:7".into() },
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("outstanding"), "{}", v[0].detail);
    }

    #[test]
    fn happy_path_server_is_clean() {
        let v = server_seq(&[
            ServerEvent::Dequeue { rid: "c1:1".into() },
            ServerEvent::Reply { rid: "c1:1".into() },
            ServerEvent::Commit,
            ServerEvent::Dequeue { rid: "c1:2".into() },
            ServerEvent::Forward { rid: "c1:2".into() },
            ServerEvent::Commit,
            ServerEvent::Dequeue { rid: "c1:3".into() },
            ServerEvent::Abort,
            ServerEvent::DropMalformed,
            ServerEvent::Commit,
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn commit_without_dequeue_is_flagged() {
        let v = server_seq(&[ServerEvent::Commit]);
        assert_eq!(v.len(), 1);
        assert!(
            v[0].detail.contains("illegal server event"),
            "{}",
            v[0].detail
        );
    }

    #[test]
    fn reply_for_wrong_request_is_flagged() {
        let v = server_seq(&[
            ServerEvent::Dequeue { rid: "c1:1".into() },
            ServerEvent::Reply { rid: "c1:2".into() },
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("dequeued request"), "{}", v[0].detail);
    }

    #[test]
    fn reply_after_commit_is_flagged() {
        let v = server_seq(&[
            ServerEvent::Dequeue { rid: "c1:1".into() },
            ServerEvent::Reply { rid: "c1:1".into() },
            ServerEvent::Commit,
            ServerEvent::Reply { rid: "c1:1".into() },
        ]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn violation_display_dumps_trace() {
        let v = server_seq(&[ServerEvent::Commit]);
        let text = v[0].to_string();
        assert!(text.contains("Commit"), "{text}");
        assert!(text.contains("trace"), "{text}");
    }

    #[test]
    fn op_failed_is_legal_everywhere_and_voids_tag_prediction() {
        // An acked Send times out on the wire but committed server-side:
        // the next incarnation's resync triple names a send the checker
        // never saw acknowledged. OpFailed must make that legal.
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::OpFailed { op: "send".into() },
            ClientEvent::Connect {
                s_rid: Some("c1:1".into()),
                r_rid: None,
            },
            ClientEvent::Receive { rid: "c1:1".into() },
            // A Receive whose ack was lost: the tag advanced unseen again.
            ClientEvent::OpFailed {
                op: "receive".into(),
            },
            ClientEvent::Connect {
                s_rid: Some("c1:1".into()),
                r_rid: Some("c1:1".into()),
            },
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn op_failed_does_not_change_state() {
        // Without an intervening Connect, the machine stays where it was:
        // a Receive is still legal after a failed receive attempt.
        let v = client_seq(&[
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::OpFailed {
                op: "receive".into(),
            },
            ClientEvent::Receive { rid: "c1:1".into() },
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lying_resync_still_flagged_without_op_failure() {
        // OpFailed must not grant blanket amnesty: a clean run whose resync
        // triple lies is still a violation (this is the existing
        // `lying_resync_triple_is_flagged` with an OpFailed on an
        // *unrelated earlier* connection cycle).
        let v = client_seq(&[
            ClientEvent::OpFailed {
                op: "connect".into(),
            },
            ClientEvent::Connect {
                s_rid: None,
                r_rid: None,
            },
            ClientEvent::Send {
                rid: "c1:1".into(),
                acked: true,
            },
            ClientEvent::Connect {
                s_rid: Some("c1:9".into()),
                r_rid: None,
            },
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("s_rid"), "{}", v[0].detail);
    }

    #[test]
    fn reset_forgets_machines_and_violations() {
        let c = Conformance::default();
        c.on_server("s1", ServerEvent::Commit); // illegal: Waiting + Commit
        c.on_server("s1", ServerEvent::Dequeue { rid: "c1:1".into() });
        assert_eq!(c.violations().len(), 1);
        c.reset();
        assert!(c.violations().is_empty());
        assert_eq!(c.events_seen(), (0, 0));
        // s1 is back in Waiting: a fresh Dequeue→Reply→Commit cycle is clean.
        c.on_server("s1", ServerEvent::Dequeue { rid: "c1:2".into() });
        c.on_server("s1", ServerEvent::Reply { rid: "c1:2".into() });
        c.on_server("s1", ServerEvent::Commit);
        assert!(c.violations().is_empty(), "{:?}", c.violations());
        assert_eq!(c.events_seen(), (0, 3));
    }

    #[test]
    fn observer_hook_is_inert_without_install() {
        // Must not panic or deadlock.
        emit_client("nobody", ClientEvent::Disconnect);
        emit_server("nobody", ServerEvent::Commit);
    }

    #[test]
    fn install_routes_events_and_uninstalls_on_drop() {
        let (checker, session) = Conformance::install();
        emit_server("s9", ServerEvent::Dequeue { rid: "c1:1".into() });
        assert_eq!(checker.events_seen(), (0, 1));
        drop(session);
        emit_server("s9", ServerEvent::Commit);
        // The post-drop event was not delivered (it would have violated).
        assert_eq!(checker.events_seen(), (0, 1));
        checker.assert_conformant();
    }
}
