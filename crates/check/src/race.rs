//! Happens-before race detection over instrumented shared state.
//!
//! Production crates report three kinds of synchronization edges:
//!
//! * lock edges — [`lock_acquired`] / [`lock_released`] from
//!   `rrq_txn::lock::LockManager` grant and release points (and
//!   [`lock_transferred`] for §5 lock inheritance);
//! * queue edges — [`queue_enqueued`] / [`queue_dequeued`] from the queue
//!   manager: a dequeue observes everything the enqueuing transaction did
//!   before enqueuing, which is exactly the paper's recoverable-request
//!   ordering;
//! * store-latch edges — [`serialized_read`] / [`serialized_write`] for
//!   records (like §4.3 registrations) that are serialized by the KV
//!   store's internal latch rather than by an explicit lock.
//!
//! Tracked cells ([`on_read`] / [`on_write`], or the [`Tracked`] wrapper)
//! are checked against the resulting happens-before order: two conflicting
//! accesses (at least one write) with neither ordered before the other are
//! reported with both access backtraces.
//!
//! The detector is off by default; a [`Session`] turns it on and serializes
//! concurrent detector tests in one process. Every hook starts with one
//! relaxed atomic load, so dormant instrumentation is effectively free.

use crate::clock::VectorClock;
use std::backtrace::Backtrace;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<()> = Mutex::new(());

fn detector() -> &'static Mutex<Detector> {
    static D: OnceLock<Mutex<Detector>> = OnceLock::new();
    D.get_or_init(|| Mutex::new(Detector::default()))
}

fn lock_poison_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    // (session epoch, thread slot) — a slot is only valid for the session
    // that allocated it.
    static SLOT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Read or write, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read of the tracked cell.
    Read,
    /// A write of the tracked cell.
    Write,
}

/// One recorded access to a tracked cell.
#[derive(Debug, Clone)]
pub struct Access {
    /// Read or write.
    pub kind: AccessKind,
    /// Thread slot within the session.
    pub thread: usize,
    /// The accessing thread's own clock component at access time; the
    /// access happens-before thread `t` iff `C_t[thread] >= tick`.
    tick: u64,
    /// Captured backtrace of the access site.
    pub stack: String,
}

/// Two conflicting accesses with no happens-before order between them.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Name of the tracked cell.
    pub cell: String,
    /// The access recorded first.
    pub earlier: Access,
    /// The access that detected the conflict.
    pub later: Access,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "data race on `{}`: {:?} by thread {} unordered with {:?} by thread {}",
            self.cell, self.earlier.kind, self.earlier.thread, self.later.kind, self.later.thread
        )?;
        writeln!(f, "--- first access ---\n{}", self.earlier.stack)?;
        writeln!(f, "--- second access ---\n{}", self.later.stack)
    }
}

#[derive(Default)]
struct CellState {
    writes: Vec<Access>,
    reads: Vec<Access>,
}

#[derive(Default)]
struct Detector {
    epoch: u64,
    threads: Vec<VectorClock>,
    resources: HashMap<String, VectorClock>,
    cells: HashMap<String, CellState>,
    reports: Vec<RaceReport>,
}

impl Detector {
    fn reset(&mut self) {
        self.epoch += 1;
        self.threads.clear();
        self.resources.clear();
        self.cells.clear();
        self.reports.clear();
    }
}

/// Allocate (or look up) the calling thread's slot for the current epoch.
fn slot_of(d: &mut Detector) -> usize {
    SLOT.with(|c| match c.get() {
        Some((epoch, slot)) if epoch == d.epoch => slot,
        _ => {
            let slot = d.threads.len();
            let mut clock = VectorClock::new();
            clock.tick(slot);
            d.threads.push(clock);
            c.set(Some((d.epoch, slot)));
            slot
        }
    })
}

fn hooked(f: impl FnOnce(&mut Detector, usize)) {
    if !ENABLED.load(Ordering::Acquire) {
        return;
    }
    let mut d = lock_poison_ok(detector());
    let slot = slot_of(&mut d);
    f(&mut d, slot);
}

fn join_acquire(d: &mut Detector, slot: usize, resource: String) {
    if let Some(r) = d.resources.get(&resource) {
        let r = r.clone();
        d.threads[slot].join(&r);
    }
}

fn join_release(d: &mut Detector, slot: usize, resource: String) {
    let t = d.threads[slot].clone();
    d.resources.entry(resource).or_default().join(&t);
    d.threads[slot].tick(slot);
}

fn lock_resource(ns: u32, key: &[u8]) -> String {
    format!("lock:{ns}:{}", String::from_utf8_lossy(key))
}

/// The calling thread was granted the lock `(ns, key)`: it now observes
/// everything done under any previous holding of that lock.
pub fn lock_acquired(ns: u32, key: &[u8]) {
    hooked(|d, slot| join_acquire(d, slot, lock_resource(ns, key)));
}

/// The calling thread released the lock `(ns, key)`.
pub fn lock_released(ns: u32, key: &[u8]) {
    hooked(|d, slot| join_release(d, slot, lock_resource(ns, key)));
}

/// §5 lock inheritance: the calling thread (the inheriting transaction's
/// thread) adopts the lock without the holder ever releasing it.
pub fn lock_transferred(ns: u32, key: &[u8]) {
    hooked(|d, slot| join_acquire(d, slot, lock_resource(ns, key)));
}

/// Release-like edge: everything the enqueuing transaction did so far is
/// published to whoever later dequeues from `queue`.
pub fn queue_enqueued(queue: &str) {
    hooked(|d, slot| join_release(d, slot, format!("queue:{queue}")));
}

/// Acquire-like edge: the dequeuer observes all publishes into `queue`.
pub fn queue_dequeued(queue: &str) {
    hooked(|d, slot| join_acquire(d, slot, format!("queue:{queue}")));
}

fn record(d: &mut Detector, slot: usize, cell: &str, kind: AccessKind) {
    let me = d.threads[slot].clone();
    let cur = Access {
        kind,
        thread: slot,
        tick: me.get(slot),
        stack: Backtrace::force_capture().to_string(),
    };
    let cs = d.cells.entry(cell.to_string()).or_default();
    let ordered = |a: &Access| me.get(a.thread) >= a.tick;
    let mut conflicts: Vec<Access> = Vec::new();
    match kind {
        AccessKind::Write => {
            // A write conflicts with every unordered prior read or write.
            for prior in cs.writes.iter().chain(cs.reads.iter()) {
                if !ordered(prior) {
                    conflicts.push(prior.clone());
                }
            }
            cs.writes = vec![cur.clone()];
            cs.reads.clear();
        }
        AccessKind::Read => {
            // A read conflicts only with unordered prior writes.
            for prior in &cs.writes {
                if !ordered(prior) {
                    conflicts.push(prior.clone());
                }
            }
            cs.reads.retain(|a| !ordered(a));
            cs.reads.push(cur.clone());
        }
    }
    for earlier in conflicts {
        d.reports.push(RaceReport {
            cell: cell.to_string(),
            earlier,
            later: cur.clone(),
        });
    }
    d.threads[slot].tick(slot);
}

/// Report a read of the tracked cell `cell`.
pub fn on_read(cell: &str) {
    hooked(|d, slot| record(d, slot, cell, AccessKind::Read));
}

/// Report a write of the tracked cell `cell`.
pub fn on_write(cell: &str) {
    hooked(|d, slot| record(d, slot, cell, AccessKind::Write));
}

/// A read of `cell` that the storage layer serializes internally (per-key
/// latch) without an explicit lock-manager lock — e.g. §4.3 registration
/// records. Accesses through this hook are mutually ordered; a direct
/// [`on_read`]/[`on_write`] on the same cell that bypasses the latch still
/// races and is reported.
pub fn serialized_read(cell: &str) {
    hooked(|d, slot| {
        let latch = format!("ser:{cell}");
        join_acquire(d, slot, latch.clone());
        record(d, slot, cell, AccessKind::Read);
        join_release(d, slot, latch);
    });
}

/// Write counterpart of [`serialized_read`].
pub fn serialized_write(cell: &str) {
    hooked(|d, slot| {
        let latch = format!("ser:{cell}");
        join_acquire(d, slot, latch.clone());
        record(d, slot, cell, AccessKind::Write);
        join_release(d, slot, latch);
    });
}

/// A value with instrumented accesses. Reads and writes are reported to the
/// active [`Session`]'s detector under the cell's name; with no session
/// active the accessors are plain passthroughs.
#[derive(Debug)]
pub struct Tracked<T> {
    name: String,
    value: T,
}

impl<T> Tracked<T> {
    /// Wrap `value` under the tracked-cell name `name`.
    pub fn new(name: impl Into<String>, value: T) -> Self {
        Tracked {
            name: name.into(),
            value,
        }
    }

    /// The cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instrumented read access.
    pub fn read(&self) -> &T {
        on_read(&self.name);
        &self.value
    }

    /// Instrumented write access through interior mutability (the caller
    /// mutates via `&T`, e.g. an atomic or a mutex-wrapped value).
    pub fn write(&self) -> &T {
        on_write(&self.name);
        &self.value
    }

    /// Instrumented exclusive write access.
    pub fn get_mut(&mut self) -> &mut T {
        on_write(&self.name);
        &mut self.value
    }

    /// Unwrap without reporting an access.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// An active detector session. Construction enables the hooks and clears
/// all prior state; drop disables them. Sessions serialize on a process-
/// wide mutex so `cargo test`'s threaded runner cannot interleave two
/// detector tests.
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

impl Session {
    /// Enable the detector (blocking until any other session ends).
    pub fn start() -> Session {
        let guard = lock_poison_ok(&SESSION);
        lock_poison_ok(detector()).reset();
        ENABLED.store(true, Ordering::SeqCst);
        Session { _guard: guard }
    }

    /// Drain the race reports accumulated so far.
    pub fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut lock_poison_ok(detector()).reports)
    }

    /// Panic with every report if any race was observed.
    pub fn assert_race_free(&self) {
        let reports = self.take_reports();
        if !reports.is_empty() {
            let mut msg = format!("{} data race(s) detected:\n", reports.len());
            for r in &reports {
                msg.push_str(&format!("{r}\n"));
            }
            panic!("{msg}");
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn same_thread_accesses_are_ordered() {
        let s = Session::start();
        on_write("cell/a");
        on_read("cell/a");
        on_write("cell/a");
        assert!(s.take_reports().is_empty());
    }

    #[test]
    fn unsynchronized_cross_thread_writes_are_flagged() {
        let s = Session::start();
        // The detector models only the edges it is told about: a thread
        // join is real synchronization, but nothing reported it, so these
        // two writes must surface as a race.
        std::thread::spawn(|| on_write("cell/b")).join().unwrap();
        on_write("cell/b");
        let reports = s.take_reports();
        assert_eq!(reports.len(), 1, "expected exactly one race");
        assert_eq!(reports[0].cell, "cell/b");
        assert_eq!(reports[0].earlier.kind, AccessKind::Write);
        assert_eq!(reports[0].later.kind, AccessKind::Write);
    }

    #[test]
    fn lock_edges_order_cross_thread_writes() {
        let s = Session::start();
        std::thread::spawn(|| {
            lock_acquired(9, b"k");
            on_write("cell/c");
            lock_released(9, b"k");
        })
        .join()
        .unwrap();
        lock_acquired(9, b"k");
        on_write("cell/c");
        lock_released(9, b"k");
        s.assert_race_free();
    }

    #[test]
    fn queue_edges_order_producer_and_consumer() {
        let s = Session::start();
        on_write("cell/d");
        queue_enqueued("q");
        std::thread::spawn(|| {
            queue_dequeued("q");
            on_read("cell/d");
            on_write("cell/d");
        })
        .join()
        .unwrap();
        s.assert_race_free();
    }

    #[test]
    fn read_read_is_not_a_race() {
        let s = Session::start();
        std::thread::spawn(|| on_read("cell/e")).join().unwrap();
        on_read("cell/e");
        assert!(s.take_reports().is_empty());
    }

    #[test]
    fn unordered_read_write_is_a_race() {
        let s = Session::start();
        std::thread::spawn(|| on_read("cell/f")).join().unwrap();
        on_write("cell/f");
        let reports = s.take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].earlier.kind, AccessKind::Read);
        assert_eq!(reports[0].later.kind, AccessKind::Write);
    }

    #[test]
    fn serialized_accesses_do_not_race_each_other() {
        let s = Session::start();
        std::thread::spawn(|| serialized_write("reg/q/c"))
            .join()
            .unwrap();
        serialized_write("reg/q/c");
        serialized_read("reg/q/c");
        assert!(s.take_reports().is_empty());
    }

    #[test]
    fn bypassing_the_store_latch_is_flagged() {
        let s = Session::start();
        std::thread::spawn(|| serialized_write("reg/q/d"))
            .join()
            .unwrap();
        // Direct write without the latch: unordered with the latched write.
        on_write("reg/q/d");
        assert_eq!(s.take_reports().len(), 1);
    }

    #[test]
    fn tracked_wrapper_reports_accesses() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let s = Session::start();
        let cell = Arc::new(Tracked::new("cell/t", AtomicU64::new(0)));
        let c2 = Arc::clone(&cell);
        std::thread::spawn(move || c2.write().store(1, Ordering::SeqCst))
            .join()
            .unwrap();
        cell.write().store(2, Ordering::SeqCst);
        assert_eq!(s.take_reports().len(), 1);
        let cell = Arc::into_inner(cell).expect("no other refs remain");
        assert_eq!(cell.into_inner().into_inner(), 2);
    }

    #[test]
    fn transfer_edge_orders_inheritor() {
        let s = Session::start();
        std::thread::spawn(|| {
            lock_acquired(3, b"x");
            on_write("cell/g");
            // Parked without releasing: inheritance hands the lock over.
            lock_released(3, b"x");
        })
        .join()
        .unwrap();
        lock_transferred(3, b"x");
        on_write("cell/g");
        s.assert_race_free();
    }

    #[test]
    fn disabled_hooks_are_inert() {
        // No session: nothing recorded, nothing panics.
        on_write("cell/z");
        let s = Session::start();
        assert!(s.take_reports().is_empty());
    }
}
