//! Vector clocks over dense thread slots.
//!
//! The race detector assigns each participating OS thread a small integer
//! slot for the lifetime of a [`crate::race::Session`], so a clock is just
//! a growable vector of counters — component `i` is the most recent event
//! of thread-slot `i` that the clock's owner has (transitively) observed.

/// A vector clock. Missing components read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component `slot` (zero when never written).
    pub fn get(&self, slot: usize) -> u64 {
        self.slots.get(slot).copied().unwrap_or(0)
    }

    /// Advance component `slot` by one; returns the new value.
    pub fn tick(&mut self, slot: usize) -> u64 {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, 0);
        }
        self.slots[slot] += 1;
        self.slots[slot]
    }

    /// Pointwise maximum: afterwards `self` has observed everything either
    /// clock had observed.
    pub fn join(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (i, v) in other.slots.iter().enumerate() {
            if self.slots[i] < *v {
                self.slots[i] = *v;
            }
        }
    }

    /// True when `self` is pointwise ≥ `other` — i.e. every event `other`
    /// has observed happens-before (or is) an event `self` has observed.
    pub fn dominates(&self, other: &VectorClock) -> bool {
        (0..other.slots.len()).all(|i| self.get(i) >= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(3), 0);
        assert_eq!(c.tick(3), 1);
        assert_eq!(c.tick(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        // b is unchanged and now strictly behind a.
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn concurrent_clocks_do_not_dominate() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }
}
