//! Workspace static analyzer: `cargo run -p rrq-check --bin rrq-analyze
//! [root]`.
//!
//! Reads the lock-class catalogue from `<root>/LOCKS.md`, scans
//! `crates/*/src`, and exits non-zero on any finding not covered by an
//! allowlist entry under `crates/check/lints/`. See `rrq_check::analyze`
//! for the rule families.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        // crates/check/../.. == the workspace root, wherever cargo runs us.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let outcome = match rrq_check::analyze::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rrq-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    for finding in &outcome.findings {
        println!("{finding}");
    }
    if outcome.findings.is_empty() {
        println!(
            "rrq-analyze: clean ({} files scanned, {} finding(s) allowlisted)",
            outcome.files_scanned, outcome.suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rrq-analyze: {} finding(s) in {} files ({} allowlisted)",
            outcome.findings.len(),
            outcome.files_scanned,
            outcome.suppressed
        );
        ExitCode::FAILURE
    }
}
