//! Workspace lint runner: `cargo run -p rrq-check --bin rrq-lint [root]`.
//!
//! Scans `crates/*/src` under the workspace root (defaulting to the root
//! that contains this crate) and exits non-zero on any finding that is not
//! covered by an allowlist entry. See `rrq_check::lint` for the line-scan
//! rules. The retired `commit-sync` and `shard-lock-order` lints are
//! delegated to the `rrq-analyze` passes that superseded them
//! (`durability-dominator` and `lock-order`), so this gate keeps covering
//! the commit-durability and stripe-ordering invariants even when run on
//! its own.

use std::path::PathBuf;
use std::process::ExitCode;

use rrq_check::analyze;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        // crates/check/../.. == the workspace root, wherever cargo runs us.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let outcome = match rrq_check::lint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rrq-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for finding in &outcome.findings {
        println!("{finding}");
    }
    // Delegated analyzer rules standing in for the retired lints. A root
    // without a readable LOCKS.md still fails closed, but only after the
    // plain lint findings above have been reported.
    let delegated =
        match analyze::run_rules(&root, &[analyze::RULE_DURABILITY, analyze::RULE_LOCK_ORDER]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("rrq-lint: cannot run delegated analyzer rules: {e}");
                return ExitCode::FAILURE;
            }
        };
    for finding in &delegated.findings {
        println!("{finding}");
    }
    let total = outcome.findings.len() + delegated.findings.len();
    let suppressed = outcome.suppressed + delegated.suppressed;
    if total == 0 {
        println!(
            "rrq-lint: clean ({} files scanned, {} finding(s) allowlisted)",
            outcome.files_scanned, suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rrq-lint: {} finding(s) in {} files ({} allowlisted)",
            total, outcome.files_scanned, suppressed
        );
        ExitCode::FAILURE
    }
}
