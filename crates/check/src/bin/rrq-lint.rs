//! Workspace lint runner: `cargo run -p rrq-check --bin rrq-lint [root]`.
//!
//! Scans `crates/*/src` under the workspace root (defaulting to the root
//! that contains this crate) and exits non-zero on any finding that is not
//! covered by an allowlist entry. See `rrq_check::lint` for the rules.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        // crates/check/../.. == the workspace root, wherever cargo runs us.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let outcome = match rrq_check::lint::run(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("rrq-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for finding in &outcome.findings {
        println!("{finding}");
    }
    if outcome.findings.is_empty() {
        println!(
            "rrq-lint: clean ({} files scanned, {} finding(s) allowlisted)",
            outcome.files_scanned, outcome.suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rrq-lint: {} finding(s) in {} files ({} allowlisted)",
            outcome.findings.len(),
            outcome.files_scanned,
            outcome.suppressed
        );
        ExitCode::FAILURE
    }
}
