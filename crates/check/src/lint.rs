//! Source-level workspace lints (plain line scanning, no parsing).
//!
//! Six rules over every `.rs` file under `crates/*/src`, skipping
//! `#[cfg(test)]` items and `//` comment lines:
//!
//! * **no-unwrap-in-recovery** — `unwrap()`/`expect(` are banned in the
//!   crash-recovery path (`storage/src/recovery.rs` and the WAL replay in
//!   `storage/src/wal.rs`): recovery must degrade to typed errors, never
//!   panic on a torn log.
//! * **no-raw-spawn** — `thread::spawn` is banned outside
//!   `core/src/threads.rs`, so every worker thread goes through one place
//!   that names it and can later carry instrumentation.
//! * **no-wallclock-in-sim** — `Instant::now`/`SystemTime::now` are banned
//!   under `crates/sim/src` and `crates/obs/src`: simulation code must
//!   take time from its driver or deadlines passed in by the caller, and
//!   the metrics layer's clock is logical ticks by construction — a
//!   wall-clock read in either would silently break replay determinism.
//! * **metric-catalogue** — every metric name used at an `rrq_obs` call
//!   site (`counter_add`/`counter_inc`/`gauge_add`/`gauge_set`/`observe`/
//!   `span`) must be declared exactly once in the table in
//!   `crates/obs/METRICS.md`, so a typo'd name fails CI instead of
//!   silently splitting a series. Names are read as the first string
//!   literal after the call's opening paren (same line, or the next for
//!   wrapped calls); an identifier argument is resolved through a
//!   same-file `const NAME: &str = "…";`. `crates/obs/src` itself is out
//!   of scope — the crate defines the hooks, it doesn't own names.
//! * **commit-sync** — a WAL append of a commit-point record
//!   (`RecordKind::Commit` or a 2PC `DECISION_KIND`) must have a `sync(`
//!   call within the next few lines; durability of the commit point is
//!   the paper's whole game. A `sync_through(` call (the group-commit
//!   coordinator's entry point) also satisfies the rule — but only after
//!   the lint has *followed the sync*: some scanned file must define
//!   `fn sync_through` whose nearby body issues a real `.sync(`.
//!   Indirection through a coordinator that never forces the device would
//!   be flagged, not allowlisted.
//! * **shard-lock-order** — inside `crates/txn` and `crates/qm`, no scope
//!   may acquire a second stripe guard while one is held. The striped
//!   coordination layer's deadlock-freedom argument rests on "at most one
//!   stripe guard per thread, `meta` strictly after it"; two stripes held
//!   at once (in either order) reintroduces the lock-order cycles the
//!   stripes were split to avoid. Guard acquisitions are recognised
//!   syntactically: `.enter()` (lock-table stripe) and `.pending_shard`
//!   (pending-map stripe) are `let`-bound guards, live until their block
//!   closes or a `drop(` line intervenes; `.with_ready(` is a
//!   closure-scoped guard, live only inside the closure's braces.
//!
//! Each lint has an allowlist file at `crates/check/lints/<lint>.allow`
//! (one `path-suffix [:: line-fragment]` per line, `#` comments) for the
//! few justified exceptions; every entry should say why.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lines of lookahead for the commit-sync adjacency rule.
const SYNC_WINDOW: usize = 4;

/// Lines of lookahead from a `fn sync_through` definition to the `.sync(`
/// it must ultimately issue (the coordinator's body, dally included).
const COORDINATOR_WINDOW: usize = 40;

// Built with concat! so this file does not match its own patterns.
const PAT_UNWRAP: &str = concat!(".unwr", "ap()");
const PAT_EXPECT: &str = concat!(".exp", "ect(");
const PAT_SPAWN: &str = concat!("thread::", "spawn(");
const PAT_INSTANT: &str = concat!("Instant::", "now");
const PAT_SYSTIME: &str = concat!("SystemTime::", "now");
const PAT_COMMIT: &str = concat!("RecordKind::", "Commit");
const PAT_DECISION: &str = concat!("DECISION_", "KIND");
const PAT_SYNC: &str = concat!("sy", "nc(");
const PAT_SYNC_THROUGH: &str = concat!("sync_th", "rough(");
const PAT_FN_SYNC_THROUGH: &str = concat!("fn sync_th", "rough");
const PAT_DOT_SYNC: &str = concat!(".sy", "nc(");
const PAT_SHARD_ENTER: &str = concat!(".ent", "er()");
const PAT_PENDING_SHARD: &str = concat!(".pending_", "shard");
const PAT_WITH_READY: &str = concat!(".with_", "ready(");
const PAT_DROP_CALL: &str = concat!("dr", "op(");

/// `let`-bound stripe-guard acquisitions (`.pending_shard` prefix-matches
/// both `.pending_shard(` and `.pending_shard_at(`).
const SHARD_GUARD_PATS: &[&str] = &[PAT_SHARD_ENTER, PAT_PENDING_SHARD];

/// The `rrq_obs` recording entry points whose first argument is a metric
/// name. `obs::` matches both `rrq_obs::f(` and a `use rrq_obs as obs` alias.
const OBS_CALL_PATS: &[&str] = &[
    concat!("obs::", "counter_add("),
    concat!("obs::", "counter_inc("),
    concat!("obs::", "gauge_add("),
    concat!("obs::", "gauge_set("),
    concat!("obs::", "observe("),
    concat!("obs::", "span("),
];

/// Path (relative to the workspace root) of the metric-name catalogue.
const CATALOGUE_REL: &str = "crates/obs/METRICS.md";

/// Every lint name, in reporting order.
pub const LINTS: &[&str] = &[
    "no-unwrap-in-recovery",
    "no-raw-spawn",
    "no-wallclock-in-sim",
    "commit-sync",
    "shard-lock-order",
    "metric-catalogue",
];

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub lint: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.excerpt
        )
    }
}

/// Result of a full lint pass.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings that survived the allowlists.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Run every lint over `<root>/crates/*/src`, applying the allowlists
/// under `<root>/crates/check/lints/`.
pub fn run(root: &Path) -> io::Result<Outcome> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Outcome::default();
    let mut texts = Vec::with_capacity(files.len());
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = relative_slash(root, file);
        texts.push((rel, text));
    }
    // "Follow the sync": a commit append may satisfy the adjacency rule via
    // the group-commit coordinator only if some scanned file really defines
    // a `fn sync_through` that reaches a device `.sync(` nearby.
    let coordinator_ok = texts
        .iter()
        .any(|(_, text)| defines_syncing_coordinator(text));
    let mut raw = Vec::new();
    for (rel, text) in &texts {
        lint_file(rel, text, coordinator_ok, &mut raw);
        out.files_scanned += 1;
    }
    lint_metric_catalogue(root, &texts, &mut raw);

    for finding in raw {
        let allow = load_allowlist(root, finding.lint);
        if allow.iter().any(|(suffix, frag)| {
            finding.file.ends_with(suffix.as_str()) && frag_matches(frag, &finding.excerpt)
        }) {
            out.suppressed += 1;
        } else {
            out.findings.push(finding);
        }
    }
    Ok(out)
}

fn frag_matches(frag: &Option<String>, excerpt: &str) -> bool {
    match frag {
        None => true,
        Some(f) => excerpt.contains(f.as_str()),
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Mark every line that belongs to a `#[cfg(test)]` item by tracking the
/// braces of the item that follows the attribute.
fn test_flags(lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            let mut depth: i64 = 0;
            let mut seen_open = false;
            let mut j = i;
            while j < lines.len() {
                flags[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if seen_open && depth <= 0 {
                    break;
                }
                if !seen_open && lines[j].contains(';') {
                    break; // braceless item, e.g. `#[cfg(test)] use …;`
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Does `text` define a `fn sync_through` whose body (within
/// [`COORDINATOR_WINDOW`] lines) issues a real `.sync(`?
fn defines_syncing_coordinator(text: &str) -> bool {
    let lines: Vec<&str> = text.lines().collect();
    lines.iter().enumerate().any(|(i, line)| {
        line.contains(PAT_FN_SYNC_THROUGH)
            && (i + 1..=i + COORDINATOR_WINDOW)
                .filter(|&j| j < lines.len())
                .any(|j| lines[j].contains(PAT_DOT_SYNC))
    })
}

fn lint_file(rel: &str, text: &str, coordinator_ok: bool, out: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let in_test = test_flags(&lines);
    let scannable = |i: usize| -> bool { !in_test[i] && !lines[i].trim_start().starts_with("//") };
    let push = |out: &mut Vec<Finding>, lint: &'static str, i: usize| {
        out.push(Finding {
            lint,
            file: rel.to_string(),
            line: i + 1,
            excerpt: lines[i].trim().to_string(),
        });
    };

    let recovery_path =
        rel.ends_with("storage/src/recovery.rs") || rel.ends_with("storage/src/wal.rs");
    let spawn_exempt = rel.ends_with("core/src/threads.rs");
    let sim_path = rel.contains("crates/sim/src") || rel.contains("crates/obs/src");
    let shard_scope = rel.contains("crates/txn/src") || rel.contains("crates/qm/src");

    if shard_scope {
        for i in shard_lock_order(&lines, &scannable) {
            push(out, "shard-lock-order", i);
        }
    }

    for i in 0..lines.len() {
        if !scannable(i) {
            continue;
        }
        let line = lines[i];
        if recovery_path && (line.contains(PAT_UNWRAP) || line.contains(PAT_EXPECT)) {
            push(out, "no-unwrap-in-recovery", i);
        }
        if !spawn_exempt && line.contains(PAT_SPAWN) {
            push(out, "no-raw-spawn", i);
        }
        if sim_path && (line.contains(PAT_INSTANT) || line.contains(PAT_SYSTIME)) {
            push(out, "no-wallclock-in-sim", i);
        }
        if line.contains(".append(") && (line.contains(PAT_COMMIT) || line.contains(PAT_DECISION)) {
            let synced = (i + 1..=i + SYNC_WINDOW)
                .filter(|&j| j < lines.len())
                .any(|j| {
                    lines[j].contains(PAT_SYNC)
                        || (coordinator_ok && lines[j].contains(PAT_SYNC_THROUGH))
                });
            if !synced {
                push(out, "commit-sync", i);
            }
        }
    }
}

/// Line indices (0-based) where a stripe guard is acquired while another
/// is already held — the `shard-lock-order` rule's per-file scan.
///
/// The tracker is a one-slot heuristic over brace depth, not a borrow
/// checker: a `let`-bound guard ([`SHARD_GUARD_PATS`]) is considered live
/// from its acquisition until the surrounding block closes (depth drops
/// below the acquisition depth) or a `drop(` line intervenes; a
/// closure-scoped guard ([`PAT_WITH_READY`]) is live only while braces
/// opened after it remain open. Two acquisitions on one line, or an
/// acquisition while the slot is occupied, is a finding. Guards that are
/// really statement-temporaries (a chained `.pending_shard(t).remove(…)`)
/// are over-approximated as live to end of block — code in scope keeps one
/// acquisition per brace scope, which is exactly the discipline the rule
/// exists to enforce.
fn shard_lock_order(lines: &[&str], scannable: &impl Fn(usize) -> bool) -> Vec<usize> {
    #[derive(Clone, Copy)]
    enum Class {
        /// `let`-bound guard: lives until its block closes or a `drop(`.
        Bound,
        /// Closure argument: lives only inside the closure's braces.
        Scoped,
    }
    enum Ev {
        Open,
        Close,
        Acq(Class),
    }
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut active: Option<(Class, i64)> = None;
    for (i, &line) in lines.iter().enumerate() {
        if !scannable(i) {
            continue;
        }
        if line.contains(PAT_DROP_CALL) && matches!(active, Some((Class::Bound, _))) {
            active = None;
        }
        let mut events: Vec<(usize, Ev)> = line
            .char_indices()
            .filter_map(|(pos, ch)| match ch {
                '{' => Some((pos, Ev::Open)),
                '}' => Some((pos, Ev::Close)),
                _ => None,
            })
            .collect();
        let find_all = |pat: &str, class: Class, events: &mut Vec<(usize, Ev)>| {
            let mut from = 0;
            while let Some(pos) = line[from..].find(pat) {
                events.push((from + pos, Ev::Acq(class)));
                from += pos + pat.len();
            }
        };
        for pat in SHARD_GUARD_PATS {
            find_all(pat, Class::Bound, &mut events);
        }
        find_all(PAT_WITH_READY, Class::Scoped, &mut events);
        events.sort_by_key(|(pos, _)| *pos);
        for (_, ev) in events {
            match ev {
                Ev::Open => depth += 1,
                Ev::Close => {
                    depth -= 1;
                    if let Some((class, d)) = active {
                        let released = match class {
                            Class::Bound => depth < d,
                            Class::Scoped => depth <= d,
                        };
                        if released {
                            active = None;
                        }
                    }
                }
                Ev::Acq(class) => {
                    if active.is_some() {
                        out.push(i);
                    } else {
                        active = Some((class, depth));
                    }
                }
            }
        }
        // A closure-scoped guard whose closure stayed on one line (no brace
        // ever opened) dies with its own statement.
        if let Some((Class::Scoped, d)) = active {
            if depth <= d {
                active = None;
            }
        }
    }
    out
}

/// Cross-file pass for the `metric-catalogue` rule: collect every metric
/// name used at an `rrq_obs` call site, parse the names declared in the
/// catalogue table, and flag uses of undeclared names plus names declared
/// more than once.
fn lint_metric_catalogue(root: &Path, texts: &[(String, String)], out: &mut Vec<Finding>) {
    let catalogue = fs::read_to_string(root.join(CATALOGUE_REL)).unwrap_or_default();
    let mut declared: Vec<String> = Vec::new();
    for (i, line) in catalogue.lines().enumerate() {
        let Some(name) = catalogue_row_name(line) else {
            continue;
        };
        if declared.iter().any(|d| d == &name) {
            out.push(Finding {
                lint: "metric-catalogue",
                file: CATALOGUE_REL.to_string(),
                line: i + 1,
                excerpt: format!("`{name}` is declared more than once in the catalogue"),
            });
        } else {
            declared.push(name);
        }
    }

    for (rel, text) in texts {
        // The obs crate defines the hooks; names in its docs and internals
        // are illustrative, not series the catalogue owns.
        if rel.contains("crates/obs/src") {
            continue;
        }
        for (line, name, excerpt) in metric_uses(text) {
            if !declared.iter().any(|d| d == &name) {
                out.push(Finding {
                    lint: "metric-catalogue",
                    file: rel.clone(),
                    line,
                    excerpt: format!("`{name}` is not declared in {CATALOGUE_REL}: {excerpt}"),
                });
            }
        }
    }
}

/// The backticked metric name from the first cell of a markdown table row,
/// if `line` is one (header and separator rows have no backticks).
fn catalogue_row_name(line: &str) -> Option<String> {
    let cell = line.trim_start().strip_prefix('|')?;
    let cell = cell.split('|').next()?;
    let rest = cell.split('`').nth(1)?;
    if rest.is_empty() {
        None
    } else {
        Some(rest.to_string())
    }
}

/// Metric names used at `rrq_obs` call sites in `text`, as
/// `(line, name, trimmed source line)` — one entry per use. The name is
/// the first string literal after the call's opening paren, read from the
/// same line or (for a wrapped call) the next; an identifier argument is
/// resolved through a same-file `const NAME: &str = "…";`. Names built any
/// other way are invisible to this lint — route them through a const.
fn metric_uses(text: &str) -> Vec<(usize, String, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let in_test = test_flags(&lines);
    let mut out = Vec::new();
    for i in 0..lines.len() {
        if in_test[i] || lines[i].trim_start().starts_with("//") {
            continue;
        }
        for pat in OBS_CALL_PATS {
            let mut from = 0;
            while let Some(pos) = lines[i][from..].find(pat) {
                from += pos + pat.len();
                let after = &lines[i][from..];
                let (line_no, name) = if let Some(name) = leading_str_literal(after) {
                    (i + 1, Some(name))
                } else if after.trim().is_empty() {
                    // Wrapped call: the name literal starts the next line.
                    (i + 2, lines.get(i + 1).and_then(|l| leading_str_literal(l)))
                } else {
                    (i + 1, resolve_const(&lines, after))
                };
                if let Some(name) = name {
                    out.push((line_no, name, lines[line_no - 1].trim().to_string()));
                }
            }
        }
    }
    out
}

/// The contents of a `"…"` literal at the start of `s` (leading whitespace
/// allowed), if one is there.
fn leading_str_literal(s: &str) -> Option<String> {
    let rest = s.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Resolve an identifier argument through a same-file
/// `const NAME: &str = "…";` declaration.
fn resolve_const(lines: &[&str], after: &str) -> Option<String> {
    let ident: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    let needle = format!("const {ident}: &str = ");
    lines.iter().find_map(|l| {
        l.split(needle.as_str())
            .nth(1)
            .and_then(leading_str_literal)
    })
}

/// Parse `crates/check/lints/<lint>.allow`: `suffix [:: fragment]` lines.
fn load_allowlist(root: &Path, lint: &str) -> Vec<(String, Option<String>)> {
    let path = root
        .join("crates/check/lints")
        .join(format!("{lint}.allow"));
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once("::") {
            Some((suffix, frag)) => {
                entries.push((suffix.trim().to_string(), Some(frag.trim().to_string())))
            }
            None => entries.push((line.to_string(), None)),
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "rrq-lint-test-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempRoot(dir)
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.0.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn unwrap_src() -> String {
        format!("fn f() {{ x{}; }}\n", PAT_UNWRAP)
    }

    #[test]
    fn unwrap_in_recovery_is_flagged() {
        let root = TempRoot::new();
        root.write("crates/storage/src/recovery.rs", &unwrap_src());
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-unwrap-in-recovery");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn unwrap_elsewhere_is_fine() {
        let root = TempRoot::new();
        root.write("crates/storage/src/kv.rs", &unwrap_src());
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn test_module_is_skipped() {
        let root = TempRoot::new();
        let src = format!(
            "fn ok() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ x{}; }}\n}}\n",
            PAT_UNWRAP
        );
        root.write("crates/storage/src/recovery.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn raw_spawn_flagged_except_in_threads_rs() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/core/src/server.rs", &src);
        root.write("crates/core/src/threads.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-raw-spawn");
        assert!(out.findings[0].file.ends_with("core/src/server.rs"));
    }

    #[test]
    fn wallclock_in_sim_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ let _ = {}(); }}\n", PAT_INSTANT);
        root.write("crates/sim/src/driver.rs", &src);
        root.write("crates/qm/src/ops.rs", &src); // out of scope
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-wallclock-in-sim");
    }

    #[test]
    fn commit_append_without_sync_flagged() {
        let root = TempRoot::new();
        let bad = format!("fn f() {{ wal.append(t, {}, &[])?; }}\n", PAT_COMMIT);
        let good = format!(
            "fn f() {{\n    wal.append(t, {}, &[])?;\n    wal.sync()?;\n}}\n",
            PAT_COMMIT
        );
        root.write("crates/storage/src/a.rs", &bad);
        root.write("crates/storage/src/b.rs", &good);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "commit-sync");
        assert!(out.findings[0].file.ends_with("a.rs"));
    }

    #[test]
    fn commit_append_via_coordinator_is_clean_when_it_really_syncs() {
        let root = TempRoot::new();
        let caller = format!(
            "fn commit() {{\n    wal.append(t, {}, &[])?;\n    self.{}target)?;\n}}\n",
            PAT_COMMIT, PAT_SYNC_THROUGH
        );
        let coordinator = format!(
            "pub {}(&self, target: u64) {{\n    let res = wal{});\n}}\n",
            PAT_FN_SYNC_THROUGH, PAT_DOT_SYNC
        );
        root.write("crates/storage/src/kv.rs", &caller);
        root.write("crates/storage/src/group_commit.rs", &coordinator);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn coordinator_that_never_syncs_does_not_satisfy_the_rule() {
        let root = TempRoot::new();
        let caller = format!(
            "fn commit() {{\n    wal.append(t, {}, &[])?;\n    self.{}target)?;\n}}\n",
            PAT_COMMIT, PAT_SYNC_THROUGH
        );
        // A coordinator definition exists but its body never forces the
        // device: following the sync leads nowhere, so the append is flagged.
        let bogus = format!(
            "pub {}(&self, _t: u64) {{\n    // dropped\n}}\n",
            PAT_FN_SYNC_THROUGH
        );
        root.write("crates/storage/src/kv.rs", &caller);
        root.write("crates/storage/src/group_commit.rs", &bogus);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "commit-sync");
    }

    #[test]
    fn allowlist_suppresses_by_suffix_and_fragment() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/net/src/bus.rs", &src);
        root.write(
            "crates/check/lints/no-raw-spawn.allow",
            "# io threads predate the helper\nnet/src/bus.rs :: std::\n",
        );
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn allowlist_fragment_must_match() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/net/src/bus.rs", &src);
        root.write(
            "crates/check/lints/no-raw-spawn.allow",
            "net/src/bus.rs :: something_else\n",
        );
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn comment_lines_are_ignored() {
        let root = TempRoot::new();
        let src = format!("// illustrative: x{};\nfn ok() {{}}\n", PAT_UNWRAP);
        root.write("crates/storage/src/recovery.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wallclock_in_obs_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ let _ = {}(); }}\n", PAT_INSTANT);
        root.write("crates/obs/src/clock.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-wallclock-in-sim");
    }

    #[test]
    fn second_stripe_guard_while_one_held_is_flagged() {
        let root = TempRoot::new();
        let src = format!(
            "fn f(&self) {{\n    let a = self.shards[0]{e};\n    let b = self.shards[1]{e};\n}}\n",
            e = PAT_SHARD_ENTER
        );
        root.write("crates/txn/src/lock.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].lint, "shard-lock-order");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn sequential_stripe_scopes_are_clean() {
        let root = TempRoot::new();
        // One guard per brace scope: a loop body re-acquiring each
        // iteration, then a fresh acquisition after the loop has closed.
        let src = format!(
            "fn f(&self) {{\n    for s in self.shards.iter() {{\n        let g = s{e};\n    }}\n    let g = self.shards[0]{e};\n}}\nfn g(&self, t: u64) {{\n    let p = self{ps}(t);\n}}\n",
            e = PAT_SHARD_ENTER,
            ps = PAT_PENDING_SHARD
        );
        root.write("crates/qm/src/ops.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let root = TempRoot::new();
        let src = format!(
            "fn f(&self) {{\n    let a = self.shards[0]{e};\n    drop(a);\n    let b = self.shards[1]{e};\n}}\n",
            e = PAT_SHARD_ENTER
        );
        root.write("crates/txn/src/lock.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn stripe_guard_inside_with_ready_closure_is_flagged() {
        let root = TempRoot::new();
        let src = format!(
            "fn f(&self, t: u64) {{\n    self{wr}\"q\", true, |m| {{\n        let p = self{ps}(t);\n    }});\n}}\n",
            wr = PAT_WITH_READY,
            ps = PAT_PENDING_SHARD
        );
        root.write("crates/qm/src/ops.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert_eq!(out.findings[0].lint, "shard-lock-order");
        assert_eq!(out.findings[0].line, 3);
    }

    #[test]
    fn with_ready_scope_ends_with_its_closure() {
        let root = TempRoot::new();
        // A multi-line closure, then a one-line closure, then a bound
        // guard: each scope ends before the next acquisition, so all clean.
        let src = format!(
            "fn f(&self, t: u64) {{\n    self{wr}\"q\", true, |m| {{\n        m.clear();\n    }});\n    let n = self{wr}\"q\", false, |m| m.len());\n    let p = self{ps}(t);\n}}\n",
            wr = PAT_WITH_READY,
            ps = PAT_PENDING_SHARD
        );
        root.write("crates/qm/src/qindex.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn stripe_guards_outside_txn_and_qm_are_out_of_scope() {
        let root = TempRoot::new();
        let src = format!(
            "fn f(&self) {{\n    let a = self.shards[0]{e};\n    let b = self.shards[1]{e};\n}}\n",
            e = PAT_SHARD_ENTER
        );
        root.write("crates/storage/src/kv.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    fn catalogue(rows: &[&str]) -> String {
        let mut md = String::from("| name | type |\n|---|---|\n");
        for r in rows {
            md.push_str(&format!("| `{r}` | counter |\n"));
        }
        md
    }

    #[test]
    fn undeclared_metric_name_is_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ rrq_{}\"qm.typo\"); }}\n", OBS_CALL_PATS[1]);
        root.write("crates/qm/src/ops.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.real"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "metric-catalogue");
        assert!(out.findings[0].excerpt.contains("qm.typo"));
        assert!(out.findings[0].file.ends_with("qm/src/ops.rs"));
    }

    #[test]
    fn declared_names_satisfy_the_catalogue_rule() {
        let root = TempRoot::new();
        // All three extraction paths: a same-line literal, a wrapped call
        // with the literal on the next line, and a const-routed name.
        let src = format!(
            "const DEPTH: &str = \"qm.depth\";\nfn f() {{\n    rrq_{pinc}\"qm.ops\");\n    rrq_{pobs}\n        \"qm.ticks\", 3);\n    rrq_{pgauge}DEPTH, 1);\n}}\n",
            pinc = OBS_CALL_PATS[1],
            pobs = OBS_CALL_PATS[4],
            pgauge = OBS_CALL_PATS[2],
        );
        root.write("crates/qm/src/ops.rs", &src);
        root.write(
            "crates/obs/METRICS.md",
            &catalogue(&["qm.ops", "qm.ticks", "qm.depth"]),
        );
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wrapped_and_const_routed_names_are_still_checked() {
        let root = TempRoot::new();
        let src = format!(
            "const DEPTH: &str = \"qm.depth\";\nfn f() {{\n    rrq_{pobs}\n        \"qm.ticks\", 3);\n    rrq_{pgauge}DEPTH, 1);\n}}\n",
            pobs = OBS_CALL_PATS[4],
            pgauge = OBS_CALL_PATS[2],
        );
        root.write("crates/qm/src/ops.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.other"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.lint == "metric-catalogue"));
        assert!(out.findings.iter().any(|f| f.excerpt.contains("qm.ticks")));
        assert!(out.findings.iter().any(|f| f.excerpt.contains("qm.depth")));
    }

    #[test]
    fn duplicate_catalogue_rows_are_flagged() {
        let root = TempRoot::new();
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.ops", "qm.ops"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "metric-catalogue");
        assert!(out.findings[0].file.ends_with("METRICS.md"));
        assert_eq!(out.findings[0].line, 4, "second row of the two");
    }

    #[test]
    fn obs_crate_sources_are_out_of_catalogue_scope() {
        let root = TempRoot::new();
        let src = format!(
            "fn f() {{ rrq_{}\"doc.example\", 1); }}\n",
            OBS_CALL_PATS[0]
        );
        root.write("crates/obs/src/lib.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.real"]));
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
