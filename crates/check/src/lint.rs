//! Source-level workspace lints (plain line scanning, no parsing).
//!
//! Four rules over every `.rs` file under `crates/*/src`, skipping
//! `#[cfg(test)]` items and `//` comment lines:
//!
//! * **no-unwrap-in-recovery** — `unwrap()`/`expect(` are banned in the
//!   crash-recovery path (`storage/src/recovery.rs` and the WAL replay in
//!   `storage/src/wal.rs`): recovery must degrade to typed errors, never
//!   panic on a torn log.
//! * **no-raw-spawn** — `thread::spawn` is banned outside
//!   `core/src/threads.rs`, so every worker thread goes through one place
//!   that names it and can later carry instrumentation.
//! * **no-wallclock-in-sim** — `Instant::now`/`SystemTime::now` are banned
//!   under `crates/sim/src` and `crates/obs/src`: simulation code must
//!   take time from its driver or deadlines passed in by the caller, and
//!   the metrics layer's clock is logical ticks by construction — a
//!   wall-clock read in either would silently break replay determinism.
//! * **metric-catalogue** — every metric name used at an `rrq_obs` call
//!   site (`counter_add`/`counter_inc`/`gauge_add`/`gauge_set`/`observe`/
//!   `span`) must be declared exactly once in the table in
//!   `crates/obs/METRICS.md`, so a typo'd name fails CI instead of
//!   silently splitting a series. Names are read as the first string
//!   literal after the call's opening paren (same line, or the next for
//!   wrapped calls); an identifier argument is resolved through a
//!   same-file `const NAME: &str = "…";`. `crates/obs/src` itself is out
//!   of scope — the crate defines the hooks, it doesn't own names.
//!
//! Two former rules were retired in favour of [`crate::analyze`], which
//! reasons about whole functions and the cross-crate call graph instead
//! of a fixed lookahead window: **commit-sync** (a commit-point append
//! must be followed by a sync within a few lines) is superseded by the
//! analyzer's `durability-dominator` rule, and **shard-lock-order** (no
//! second stripe guard while one is held, single scope only) by its
//! `lock-order` rule driven by the declared partial order in `LOCKS.md`.
//! The `rrq-lint` binary still runs those two analyzer rules so the old
//! CI gate keeps its teeth even if `rrq-analyze` is skipped.
//!
//! Each lint has an allowlist file at `crates/check/lints/<lint>.allow`
//! (one `path-suffix [:: line-fragment]` per line, `#` comments) for the
//! few justified exceptions; every entry should say why.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// Built with concat! so this file does not match its own patterns.
const PAT_UNWRAP: &str = concat!(".unwr", "ap()");
const PAT_EXPECT: &str = concat!(".exp", "ect(");
const PAT_SPAWN: &str = concat!("thread::", "spawn(");
const PAT_INSTANT: &str = concat!("Instant::", "now");
const PAT_SYSTIME: &str = concat!("SystemTime::", "now");

/// The `rrq_obs` recording entry points whose first argument is a metric
/// name. `obs::` matches both `rrq_obs::f(` and a `use rrq_obs as obs` alias.
const OBS_CALL_PATS: &[&str] = &[
    concat!("obs::", "counter_add("),
    concat!("obs::", "counter_inc("),
    concat!("obs::", "gauge_add("),
    concat!("obs::", "gauge_set("),
    concat!("obs::", "observe("),
    concat!("obs::", "span("),
];

/// Path (relative to the workspace root) of the metric-name catalogue.
const CATALOGUE_REL: &str = "crates/obs/METRICS.md";

/// Every lint name, in reporting order.
pub const LINTS: &[&str] = &[
    "no-unwrap-in-recovery",
    "no-raw-spawn",
    "no-wallclock-in-sim",
    "metric-catalogue",
];

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub lint: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.excerpt
        )
    }
}

/// Result of a full lint pass.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings that survived the allowlists.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Run every lint over `<root>/crates/*/src`, applying the allowlists
/// under `<root>/crates/check/lints/`.
pub fn run(root: &Path) -> io::Result<Outcome> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();

    let mut out = Outcome::default();
    let mut texts = Vec::with_capacity(files.len());
    for file in &files {
        let text = fs::read_to_string(file)?;
        let rel = relative_slash(root, file);
        texts.push((rel, text));
    }
    let mut raw = Vec::new();
    for (rel, text) in &texts {
        lint_file(rel, text, &mut raw);
        out.files_scanned += 1;
    }
    lint_metric_catalogue(root, &texts, &mut raw);

    for finding in raw {
        let allow = load_allowlist(root, finding.lint);
        if allow.iter().any(|(suffix, frag)| {
            finding.file.ends_with(suffix.as_str()) && frag_matches(frag, &finding.excerpt)
        }) {
            out.suppressed += 1;
        } else {
            out.findings.push(finding);
        }
    }
    Ok(out)
}

pub(crate) fn frag_matches(frag: &Option<String>, excerpt: &str) -> bool {
    match frag {
        None => true,
        Some(f) => excerpt.contains(f.as_str()),
    }
}

pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

pub(crate) fn relative_slash(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Mark every line that belongs to a `#[cfg(test)]` item by tracking the
/// braces of the item that follows the attribute. Also covers compound
/// gates like `#[cfg(all(test, debug_assertions))]`.
pub(crate) fn test_flags(lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let head = lines[i].trim_start();
        if head.starts_with("#[cfg(test)]") || head.starts_with("#[cfg(all(test") {
            let mut depth: i64 = 0;
            let mut seen_open = false;
            let mut j = i;
            while j < lines.len() {
                flags[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if seen_open && depth <= 0 {
                    break;
                }
                if !seen_open && lines[j].contains(';') {
                    break; // braceless item, e.g. `#[cfg(test)] use …;`
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

fn lint_file(rel: &str, text: &str, out: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let in_test = test_flags(&lines);
    let scannable = |i: usize| -> bool { !in_test[i] && !lines[i].trim_start().starts_with("//") };
    let push = |out: &mut Vec<Finding>, lint: &'static str, i: usize| {
        out.push(Finding {
            lint,
            file: rel.to_string(),
            line: i + 1,
            excerpt: lines[i].trim().to_string(),
        });
    };

    let recovery_path =
        rel.ends_with("storage/src/recovery.rs") || rel.ends_with("storage/src/wal.rs");
    let spawn_exempt = rel.ends_with("core/src/threads.rs");
    let sim_path = rel.contains("crates/sim/src") || rel.contains("crates/obs/src");

    for (i, &line) in lines.iter().enumerate() {
        if !scannable(i) {
            continue;
        }
        if recovery_path && (line.contains(PAT_UNWRAP) || line.contains(PAT_EXPECT)) {
            push(out, "no-unwrap-in-recovery", i);
        }
        if !spawn_exempt && line.contains(PAT_SPAWN) {
            push(out, "no-raw-spawn", i);
        }
        if sim_path && (line.contains(PAT_INSTANT) || line.contains(PAT_SYSTIME)) {
            push(out, "no-wallclock-in-sim", i);
        }
    }
}

/// Cross-file pass for the `metric-catalogue` rule: collect every metric
/// name used at an `rrq_obs` call site, parse the names declared in the
/// catalogue table, and flag uses of undeclared names plus names declared
/// more than once.
fn lint_metric_catalogue(root: &Path, texts: &[(String, String)], out: &mut Vec<Finding>) {
    let catalogue = fs::read_to_string(root.join(CATALOGUE_REL)).unwrap_or_default();
    let mut declared: Vec<String> = Vec::new();
    for (i, line) in catalogue.lines().enumerate() {
        let Some(name) = catalogue_row_name(line) else {
            continue;
        };
        if declared.iter().any(|d| d == &name) {
            out.push(Finding {
                lint: "metric-catalogue",
                file: CATALOGUE_REL.to_string(),
                line: i + 1,
                excerpt: format!("`{name}` is declared more than once in the catalogue"),
            });
        } else {
            declared.push(name);
        }
    }

    for (rel, text) in texts {
        // The obs crate defines the hooks; names in its docs and internals
        // are illustrative, not series the catalogue owns.
        if rel.contains("crates/obs/src") {
            continue;
        }
        for (line, name, excerpt) in metric_uses(text) {
            if !declared.iter().any(|d| d == &name) {
                out.push(Finding {
                    lint: "metric-catalogue",
                    file: rel.clone(),
                    line,
                    excerpt: format!("`{name}` is not declared in {CATALOGUE_REL}: {excerpt}"),
                });
            }
        }
    }
}

/// The backticked metric name from the first cell of a markdown table row,
/// if `line` is one (header and separator rows have no backticks).
fn catalogue_row_name(line: &str) -> Option<String> {
    let cell = line.trim_start().strip_prefix('|')?;
    let cell = cell.split('|').next()?;
    let rest = cell.split('`').nth(1)?;
    if rest.is_empty() {
        None
    } else {
        Some(rest.to_string())
    }
}

/// Metric names used at `rrq_obs` call sites in `text`, as
/// `(line, name, trimmed source line)` — one entry per use. The name is
/// the first string literal after the call's opening paren, read from the
/// same line or (for a wrapped call) the next; an identifier argument is
/// resolved through a same-file `const NAME: &str = "…";`. Names built any
/// other way are invisible to this lint — route them through a const.
fn metric_uses(text: &str) -> Vec<(usize, String, String)> {
    let lines: Vec<&str> = text.lines().collect();
    let in_test = test_flags(&lines);
    let mut out = Vec::new();
    for i in 0..lines.len() {
        if in_test[i] || lines[i].trim_start().starts_with("//") {
            continue;
        }
        for pat in OBS_CALL_PATS {
            let mut from = 0;
            while let Some(pos) = lines[i][from..].find(pat) {
                from += pos + pat.len();
                let after = &lines[i][from..];
                let (line_no, name) = if let Some(name) = leading_str_literal(after) {
                    (i + 1, Some(name))
                } else if after.trim().is_empty() {
                    // Wrapped call: the name literal starts the next line.
                    (i + 2, lines.get(i + 1).and_then(|l| leading_str_literal(l)))
                } else {
                    (i + 1, resolve_const(&lines, after))
                };
                if let Some(name) = name {
                    out.push((line_no, name, lines[line_no - 1].trim().to_string()));
                }
            }
        }
    }
    out
}

/// The contents of a `"…"` literal at the start of `s` (leading whitespace
/// allowed), if one is there.
fn leading_str_literal(s: &str) -> Option<String> {
    let rest = s.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Resolve an identifier argument through a same-file
/// `const NAME: &str = "…";` declaration.
fn resolve_const(lines: &[&str], after: &str) -> Option<String> {
    let ident: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    let needle = format!("const {ident}: &str = ");
    lines.iter().find_map(|l| {
        l.split(needle.as_str())
            .nth(1)
            .and_then(leading_str_literal)
    })
}

/// Parse `crates/check/lints/<lint>.allow`: `suffix [:: fragment]` lines.
pub(crate) fn load_allowlist(root: &Path, lint: &str) -> Vec<(String, Option<String>)> {
    let path = root
        .join("crates/check/lints")
        .join(format!("{lint}.allow"));
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match line.split_once("::") {
            Some((suffix, frag)) => {
                entries.push((suffix.trim().to_string(), Some(frag.trim().to_string())))
            }
            None => entries.push((line.to_string(), None)),
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new() -> Self {
            let dir = std::env::temp_dir().join(format!(
                "rrq-lint-test-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempRoot(dir)
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.0.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn unwrap_src() -> String {
        format!("fn f() {{ x{}; }}\n", PAT_UNWRAP)
    }

    #[test]
    fn unwrap_in_recovery_is_flagged() {
        let root = TempRoot::new();
        root.write("crates/storage/src/recovery.rs", &unwrap_src());
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-unwrap-in-recovery");
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn unwrap_elsewhere_is_fine() {
        let root = TempRoot::new();
        root.write("crates/storage/src/kv.rs", &unwrap_src());
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn test_module_is_skipped() {
        let root = TempRoot::new();
        let src = format!(
            "fn ok() {{}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ x{}; }}\n}}\n",
            PAT_UNWRAP
        );
        root.write("crates/storage/src/recovery.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn raw_spawn_flagged_except_in_threads_rs() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/core/src/server.rs", &src);
        root.write("crates/core/src/threads.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-raw-spawn");
        assert!(out.findings[0].file.ends_with("core/src/server.rs"));
    }

    #[test]
    fn wallclock_in_sim_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ let _ = {}(); }}\n", PAT_INSTANT);
        root.write("crates/sim/src/driver.rs", &src);
        root.write("crates/qm/src/ops.rs", &src); // out of scope
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-wallclock-in-sim");
    }

    #[test]
    fn allowlist_suppresses_by_suffix_and_fragment() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/net/src/bus.rs", &src);
        root.write(
            "crates/check/lints/no-raw-spawn.allow",
            "# io threads predate the helper\nnet/src/bus.rs :: std::\n",
        );
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn allowlist_fragment_must_match() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ std::{}|| ()); }}\n", PAT_SPAWN);
        root.write("crates/net/src/bus.rs", &src);
        root.write(
            "crates/check/lints/no-raw-spawn.allow",
            "net/src/bus.rs :: something_else\n",
        );
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn comment_lines_are_ignored() {
        let root = TempRoot::new();
        let src = format!("// illustrative: x{};\nfn ok() {{}}\n", PAT_UNWRAP);
        root.write("crates/storage/src/recovery.rs", &src);
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wallclock_in_obs_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ let _ = {}(); }}\n", PAT_INSTANT);
        root.write("crates/obs/src/clock.rs", &src);
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "no-wallclock-in-sim");
    }

    fn catalogue(rows: &[&str]) -> String {
        let mut md = String::from("| name | type |\n|---|---|\n");
        for r in rows {
            md.push_str(&format!("| `{r}` | counter |\n"));
        }
        md
    }

    #[test]
    fn undeclared_metric_name_is_flagged() {
        let root = TempRoot::new();
        let src = format!("fn f() {{ rrq_{}\"qm.typo\"); }}\n", OBS_CALL_PATS[1]);
        root.write("crates/qm/src/ops.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.real"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "metric-catalogue");
        assert!(out.findings[0].excerpt.contains("qm.typo"));
        assert!(out.findings[0].file.ends_with("qm/src/ops.rs"));
    }

    #[test]
    fn declared_names_satisfy_the_catalogue_rule() {
        let root = TempRoot::new();
        // All three extraction paths: a same-line literal, a wrapped call
        // with the literal on the next line, and a const-routed name.
        let src = format!(
            "const DEPTH: &str = \"qm.depth\";\nfn f() {{\n    rrq_{pinc}\"qm.ops\");\n    rrq_{pobs}\n        \"qm.ticks\", 3);\n    rrq_{pgauge}DEPTH, 1);\n}}\n",
            pinc = OBS_CALL_PATS[1],
            pobs = OBS_CALL_PATS[4],
            pgauge = OBS_CALL_PATS[2],
        );
        root.write("crates/qm/src/ops.rs", &src);
        root.write(
            "crates/obs/METRICS.md",
            &catalogue(&["qm.ops", "qm.ticks", "qm.depth"]),
        );
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wrapped_and_const_routed_names_are_still_checked() {
        let root = TempRoot::new();
        let src = format!(
            "const DEPTH: &str = \"qm.depth\";\nfn f() {{\n    rrq_{pobs}\n        \"qm.ticks\", 3);\n    rrq_{pgauge}DEPTH, 1);\n}}\n",
            pobs = OBS_CALL_PATS[4],
            pgauge = OBS_CALL_PATS[2],
        );
        root.write("crates/qm/src/ops.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.other"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 2, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.lint == "metric-catalogue"));
        assert!(out.findings.iter().any(|f| f.excerpt.contains("qm.ticks")));
        assert!(out.findings.iter().any(|f| f.excerpt.contains("qm.depth")));
    }

    #[test]
    fn duplicate_catalogue_rows_are_flagged() {
        let root = TempRoot::new();
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.ops", "qm.ops"]));
        let out = run(&root.0).unwrap();
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].lint, "metric-catalogue");
        assert!(out.findings[0].file.ends_with("METRICS.md"));
        assert_eq!(out.findings[0].line, 4, "second row of the two");
    }

    #[test]
    fn obs_crate_sources_are_out_of_catalogue_scope() {
        let root = TempRoot::new();
        let src = format!(
            "fn f() {{ rrq_{}\"doc.example\", 1); }}\n",
            OBS_CALL_PATS[0]
        );
        root.write("crates/obs/src/lib.rs", &src);
        root.write("crates/obs/METRICS.md", &catalogue(&["qm.real"]));
        let out = run(&root.0).unwrap();
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
