//! Correctness tooling for the recoverable-request workspace (S18).
//!
//! Three independent layers, all zero-dependency so every production crate
//! can link the hooks:
//!
//! * [`race`] — a vector-clock happens-before race detector. The lock
//!   manager, the queue manager, and instrumented shared state report
//!   acquire/release and enqueue/dequeue edges; unordered conflicting
//!   accesses to a tracked cell are reported with both access stacks.
//! * [`protocol`] — the paper's Fig 1 (client) and Fig 5 (server)
//!   state-transition diagrams as data, plus a conformance checker that
//!   validates event traces emitted by `rrq-core`'s clerk and server loop.
//! * [`lint`] — a source-level lint pass over `crates/*/src` enforcing
//!   workspace rules (no `unwrap` in recovery paths, no raw thread spawns,
//!   no wall-clock reads in simulation code, `sync()` adjacent to
//!   commit-point log writes). Run it with `cargo run -p rrq-check --bin
//!   rrq-lint`; it is also enforced by a `cargo test` gate.
//!
//! All runtime hooks are compiled in permanently but gated behind a relaxed
//! atomic load, so production code pays one predictable branch when no
//! checker is active.

pub mod clock;
pub mod lint;
pub mod protocol;
pub mod race;
