//! Correctness tooling for the recoverable-request workspace (S18).
//!
//! Three independent layers, all zero-dependency so every production crate
//! can link the hooks:
//!
//! * [`race`] — a vector-clock happens-before race detector. The lock
//!   manager, the queue manager, and instrumented shared state report
//!   acquire/release and enqueue/dequeue edges; unordered conflicting
//!   accesses to a tracked cell are reported with both access stacks.
//! * [`protocol`] — the paper's Fig 1 (client) and Fig 5 (server)
//!   state-transition diagrams as data, plus a conformance checker that
//!   validates event traces emitted by `rrq-core`'s clerk and server loop.
//! * [`lint`] — a source-level lint pass over `crates/*/src` enforcing
//!   single-line workspace rules (no `unwrap` in recovery paths, no raw
//!   thread spawns, no wall-clock reads in simulation code). Run it with
//!   `cargo run -p rrq-check --bin rrq-lint`; it is also enforced by a
//!   `cargo test` gate.
//! * [`analyze`] — the whole-workspace static analyzer (`rrq-analyze`): a
//!   per-function fact base driven by the checked-in `LOCKS.md` catalogue,
//!   enforcing the declared lock-acquisition order across crates, the
//!   durability-dominator rule for commit-point mutations, no blocking
//!   under `no-block` guards, and `Ordering::Relaxed` confined to
//!   `crates/obs`. It supersedes the old `commit-sync` and
//!   `shard-lock-order` lints.
//!
//! All runtime hooks are compiled in permanently but gated behind one
//! atomic load, so production code pays one predictable branch when no
//! checker is active.

pub mod analyze;
pub mod clock;
pub mod lint;
pub mod protocol;
pub mod race;
