//! Ticketing workload for the §3 exactly-once reply-processing experiments:
//! each request books a seat; the reply is a ticket the client prints on the
//! non-idempotent [`rrq_core::device::TicketPrinter`].

use rrq_core::error::CoreResult;
use rrq_core::server::{Handler, HandlerError, HandlerOutcome};
use rrq_qm::repository::Repository;
use rrq_txn::LockKey;
use std::sync::Arc;

/// Lock namespace for the seat counter.
pub const SEAT_NS: u32 = 9;

const SEAT_KEY: &[u8] = b"tickets/next-seat";

/// Initialize the seat counter.
pub fn seed_seats(repo: &Repository) -> CoreResult<()> {
    let t = u64::MAX - 301;
    repo.store().begin(t)?;
    repo.store().put(t, SEAT_KEY, &0u64.to_le_bytes())?;
    repo.store().commit(t)?;
    Ok(())
}

/// Number of seats booked so far (committed view), summed across
/// partition stores — each booking server increments its home copy.
pub fn seats_booked(repo: &Repository) -> CoreResult<u64> {
    let mut sum = 0;
    for p in 0..repo.partitions() {
        sum += repo
            .store_at(p)
            .get(None, SEAT_KEY)?
            .map(|raw| u64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
            .unwrap_or(0);
    }
    Ok(sum)
}

/// The booking handler: allocate the next seat number, reply with it.
/// Because the allocation commits with the dequeue, a request that is
/// retried after a crash books exactly one seat — the server-side half of
/// exactly-once.
pub fn booking_handler() -> Handler {
    Arc::new(|ctx, req| {
        ctx.txn
            .lock_exclusive(&LockKey::new(SEAT_NS, SEAT_KEY))
            .map_err(|e| HandlerError::Abort(e.to_string()))?;
        let txn = ctx.txn.id().raw();
        let next = ctx
            .store()
            .get(Some(txn), SEAT_KEY)
            .map_err(|e| HandlerError::Abort(e.to_string()))?
            .map(|raw| u64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
            .unwrap_or(0);
        ctx.store()
            .put(txn, SEAT_KEY, &(next + 1).to_le_bytes())
            .map_err(|e| HandlerError::Abort(e.to_string()))?;
        Ok(HandlerOutcome::Reply(
            format!("seat {next} for {}", req.rid).into_bytes(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_core::api::{LocalQm, QmApi};
    use rrq_core::request::{Reply, Request};
    use rrq_core::rid::Rid;
    use rrq_core::server::{Server, ServerConfig};
    use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
    use rrq_storage::codec::{Decode, Encode};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn each_booking_gets_a_distinct_seat() {
        let repo = Arc::new(Repository::create("tix").unwrap());
        repo.create_queue_defaults("book").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_seats(&repo).unwrap();
        let server = Server::new(
            Arc::clone(&repo),
            ServerConfig::new("s", "book"),
            booking_handler(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("book", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let mut bodies = Vec::new();
        for i in 0..5u64 {
            let req = Request::new(Rid::new("c", i + 1), "reply.c", "book", vec![]);
            api.enqueue("book", "c", &req.encode_to_vec(), EnqueueOptions::default())
                .unwrap();
            let elem = api
                .dequeue(
                    "reply.c",
                    "c",
                    DequeueOptions {
                        block: Some(Duration::from_secs(10)),
                        ..Default::default()
                    },
                )
                .unwrap();
            bodies.push(Reply::decode_all(&elem.payload).unwrap().body);
        }
        assert_eq!(seats_booked(&repo).unwrap(), 5);
        bodies.sort();
        bodies.dedup();
        assert_eq!(bodies.len(), 5, "all seats distinct");
        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
