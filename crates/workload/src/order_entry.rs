//! Order-entry workload: the §1 batch-input motivation ("requests can be
//! captured reliably in a queue, and processed later in a batch").
//!
//! Orders arrive (possibly while no server is running at all), accumulate in
//! the request queue, and are validated against a catalog when the batch
//! servers come up. Orders for unknown items are *rejected* (Failed reply);
//! orders for the designated poison item make the handler abort, exercising
//! the error-queue path.

use rrq_core::error::{CoreError, CoreResult};
use rrq_core::server::{Handler, HandlerError, HandlerOutcome};
use rrq_qm::repository::Repository;
use rrq_storage::codec::{put, Reader};
use rrq_txn::LockKey;
use std::sync::Arc;

/// Lock namespace for inventory keys.
pub const INV_NS: u32 = 8;

/// An order request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Order {
    /// Catalog item id.
    pub item: u32,
    /// Quantity requested.
    pub qty: u32,
}

impl Order {
    /// Encode as a request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put::u32(&mut buf, self.item);
        put::u32(&mut buf, self.qty);
        buf
    }

    /// Decode from a request body.
    pub fn decode(raw: &[u8]) -> CoreResult<Order> {
        let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
        let mut r = Reader::new(raw);
        Ok(Order {
            item: r.u32().map_err(m)?,
            qty: r.u32().map_err(m)?,
        })
    }
}

/// The item id that makes the handler abort (poison request).
pub const POISON_ITEM: u32 = u32::MAX;

fn item_key(item: u32) -> Vec<u8> {
    format!("inv/{item:08}").into_bytes()
}

/// Stock `count` units of items `0..items` (partition 0's store).
pub fn seed_inventory(repo: &Repository, items: u32, count: u32) -> CoreResult<()> {
    seed_store(repo.store(), items, count)
}

/// Stock inventory on the partition that owns `queue`, co-locating the
/// item table with a server homed on that queue.
pub fn seed_inventory_on(repo: &Repository, queue: &str, items: u32, count: u32) -> CoreResult<()> {
    seed_store(repo.store_for(queue), items, count)
}

fn seed_store(store: &Arc<rrq_storage::kv::KvStore>, items: u32, count: u32) -> CoreResult<()> {
    let t = u64::MAX - 201;
    store.begin(t)?;
    for i in 0..items {
        store.put(t, &item_key(i), &count.to_le_bytes())?;
    }
    store.commit(t)?;
    Ok(())
}

/// Remaining stock of `item`, summed across partition stores (the item
/// row lives on whichever partition seeded it).
pub fn stock(repo: &Repository, item: u32) -> CoreResult<u32> {
    let mut sum = 0;
    for p in 0..repo.partitions() {
        sum += repo
            .store_at(p)
            .get(None, &item_key(item))?
            .map(|raw| u32::from_le_bytes(raw.try_into().unwrap_or([0; 4])))
            .unwrap_or(0);
    }
    Ok(sum)
}

/// The order handler: reserves inventory, rejects unknown items and
/// insufficient stock, aborts on the poison item.
pub fn order_handler() -> Handler {
    Arc::new(|ctx, req| {
        let order = Order::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        if order.item == POISON_ITEM {
            return Err(HandlerError::Abort("poison order".into()));
        }
        let key = item_key(order.item);
        ctx.txn
            .lock_exclusive(&LockKey::new(INV_NS, key.clone()))
            .map_err(|e| HandlerError::Abort(e.to_string()))?;
        let txn = ctx.txn.id().raw();
        let Some(raw) = ctx
            .store()
            .get(Some(txn), &key)
            .map_err(|e| HandlerError::Abort(e.to_string()))?
        else {
            return Err(HandlerError::Reject(format!("unknown item {}", order.item)));
        };
        let have = u32::from_le_bytes(raw.try_into().unwrap_or([0; 4]));
        if have < order.qty {
            return Err(HandlerError::Reject(format!(
                "insufficient stock: want {}, have {have}",
                order.qty
            )));
        }
        ctx.store()
            .put(txn, &key, &(have - order.qty).to_le_bytes())
            .map_err(|e| HandlerError::Abort(e.to_string()))?;
        Ok(HandlerOutcome::Reply(
            format!("reserved {}x{}", order.qty, order.item).into_bytes(),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_core::api::{LocalQm, QmApi};
    use rrq_core::request::{Reply, ReplyStatus, Request};
    use rrq_core::rid::Rid;
    use rrq_core::server::{Server, ServerConfig};
    use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
    use rrq_storage::codec::{Decode, Encode};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn order_codec_roundtrip() {
        let o = Order { item: 3, qty: 9 };
        assert_eq!(Order::decode(&o.encode()).unwrap(), o);
    }

    #[test]
    fn batch_capture_then_process() {
        let repo = Arc::new(Repository::create("orders").unwrap());
        repo.create_queue_defaults("orders").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_inventory(&repo, 3, 100).unwrap();

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("orders", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();

        // Capture a batch with NO server running (§1 batch input).
        for i in 0..10u64 {
            let req = Request::new(
                Rid::new("c", i + 1),
                "reply.c",
                "order",
                Order {
                    item: (i % 3) as u32,
                    qty: 2,
                }
                .encode(),
            );
            api.enqueue(
                "orders",
                "c",
                &req.encode_to_vec(),
                EnqueueOptions::default(),
            )
            .unwrap();
        }
        assert_eq!(api.depth("orders").unwrap(), 10);

        // Now bring the server up and drain the batch.
        let server = Server::new(
            Arc::clone(&repo),
            ServerConfig::new("s", "orders"),
            order_handler(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));
        for _ in 0..10 {
            let elem = api
                .dequeue(
                    "reply.c",
                    "c",
                    DequeueOptions {
                        block: Some(Duration::from_secs(10)),
                        ..Default::default()
                    },
                )
                .unwrap();
            let reply = Reply::decode_all(&elem.payload).unwrap();
            assert_eq!(reply.status, ReplyStatus::Ok);
        }
        // 10 orders × 2 units spread over items 0..3 (4,3,3 orders).
        assert_eq!(stock(&repo, 0).unwrap(), 100 - 8);
        assert_eq!(stock(&repo, 1).unwrap(), 100 - 6);
        assert_eq!(stock(&repo, 2).unwrap(), 100 - 6);

        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }

    #[test]
    fn unknown_item_rejected_with_failed_reply() {
        let repo = Arc::new(Repository::create("orders2").unwrap());
        repo.create_queue_defaults("orders").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_inventory(&repo, 1, 10).unwrap();
        let server = Server::new(
            Arc::clone(&repo),
            ServerConfig::new("s", "orders"),
            order_handler(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("orders", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let req = Request::new(
            Rid::new("c", 1),
            "reply.c",
            "order",
            Order { item: 77, qty: 1 }.encode(),
        );
        api.enqueue(
            "orders",
            "c",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.status, ReplyStatus::Failed);
        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }

    #[test]
    fn poison_order_lands_in_error_queue() {
        let repo = Arc::new(Repository::create("orders3").unwrap());
        let mut meta = rrq_qm::meta::QueueMeta::with_defaults("orders");
        meta.retry_limit = 2;
        repo.qm().create_queue(meta).unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_inventory(&repo, 1, 10).unwrap();
        let server = Server::new(
            Arc::clone(&repo),
            ServerConfig::new("s", "orders"),
            order_handler(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("orders", "c", false).unwrap();
        let req = Request::new(
            Rid::new("c", 1),
            "reply.c",
            "order",
            Order {
                item: POISON_ITEM,
                qty: 1,
            }
            .encode(),
        );
        api.enqueue(
            "orders",
            "c",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();

        // Wait until the poison order lands in the error queue.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while repo.qm().depth("orders.errors").unwrap_or(0) == 0 {
            assert!(std::time::Instant::now() < deadline, "never errored out");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(api.depth("orders").unwrap(), 0);
        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
