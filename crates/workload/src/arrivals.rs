//! Deterministic arrival processes and skewed key selection.
//!
//! §1: "queues provide a buffer that mitigates the effects of bursts of
//! requests" — the on/off burst process here drives experiment E11. The
//! Zipf-like selector drives contention sweeps (E6).

/// splitmix64 — a tiny deterministic PRNG so arrival schedules are
/// reproducible from a seed without pulling thread-local state.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Arrival offsets (microseconds from start) for `n` requests at a uniform
/// rate of `per_sec`.
pub fn uniform_arrivals(n: usize, per_sec: f64, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix::new(seed);
    let mean_gap_us = 1e6 / per_sec.max(1e-9);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Exponential inter-arrival (Poisson process).
        let u = rng.next_f64().max(1e-12);
        t += -mean_gap_us * u.ln();
        out.push(t as u64);
    }
    out
}

/// On/off bursts: `burst_len` arrivals back-to-back at `burst_rate_per_sec`,
/// then an idle gap of `idle_ms`, repeated until `n` arrivals are produced.
pub fn bursty_arrivals(
    n: usize,
    burst_len: usize,
    burst_rate_per_sec: f64,
    idle_ms: u64,
    seed: u64,
) -> Vec<u64> {
    let mut rng = SplitMix::new(seed);
    let gap_us = 1e6 / burst_rate_per_sec.max(1e-9);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        for _ in 0..burst_len.max(1) {
            if out.len() >= n {
                break;
            }
            t += gap_us * (0.5 + rng.next_f64()); // jittered
            out.push(t as u64);
        }
        t += (idle_ms * 1000) as f64;
    }
    out
}

/// Zipf-like selector over `0..n` with skew `theta` in `[0, 1)`; `theta = 0`
/// is uniform, larger values concentrate on low indices. Uses the quick
/// power-law approximation `floor(n * u^(1/(1-theta)))`.
#[derive(Debug, Clone)]
pub struct ZipfSelector {
    n: usize,
    exponent: f64,
    rng: SplitMix,
}

impl ZipfSelector {
    /// Build a selector.
    pub fn new(n: usize, theta: f64, seed: u64) -> Self {
        let theta = theta.clamp(0.0, 0.999);
        ZipfSelector {
            n: n.max(1),
            exponent: 1.0 / (1.0 - theta),
            rng: SplitMix::new(seed),
        }
    }

    /// Draw an index.
    #[allow(clippy::should_implement_trait)] // deliberate: not an Iterator
    pub fn next(&mut self) -> usize {
        let u = self.rng.next_f64();
        let v = u.powf(self.exponent);
        ((v * self.n as f64) as usize).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_arrivals_are_monotone_with_roughly_right_rate() {
        let arr = uniform_arrivals(1000, 1000.0, 7);
        assert_eq!(arr.len(), 1000);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        let total_s = *arr.last().unwrap() as f64 / 1e6;
        assert!((0.5..2.0).contains(&(1000.0 / total_s / 1000.0)));
    }

    #[test]
    fn bursts_have_idle_gaps() {
        let arr = bursty_arrivals(100, 10, 10_000.0, 50, 1);
        assert_eq!(arr.len(), 100);
        // Max inter-arrival gap must reflect the idle period (50 ms).
        let max_gap = arr.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert!(max_gap >= 50_000, "got {max_gap}");
        // Within a burst, gaps are ~100 µs.
        let min_gap = arr.windows(2).map(|w| w[1] - w[0]).min().unwrap();
        assert!(min_gap < 1_000);
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let mut z = ZipfSelector::new(100, 0.9, 3);
        let mut low = 0;
        for _ in 0..10_000 {
            if z.next() < 10 {
                low += 1;
            }
        }
        assert!(
            low > 5_000,
            "90% skew should hit the top decile often: {low}"
        );
        // theta=0 is roughly uniform.
        let mut u = ZipfSelector::new(100, 0.0, 3);
        let mut low_u = 0;
        for _ in 0..10_000 {
            if u.next() < 10 {
                low_u += 1;
            }
        }
        assert!((500..2_000).contains(&low_u), "{low_u}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let mut z = ZipfSelector::new(5, 0.99, 9);
        for _ in 0..1000 {
            assert!(z.next() < 5);
        }
    }
}
