//! # rrq-workload
//!
//! Workload generators and reference applications for the experiments:
//!
//! * [`bank`] — the account database and the §6 funds-transfer request,
//!   executed either as one transaction or as the paper's three-transaction
//!   pipeline (debit source, credit target, log with the clearinghouse),
//!   with conservation invariants for the oracles.
//! * [`order_entry`] — an order-capture workload (§1's batch-input
//!   motivation): requests validated against a catalog, with a deliberately
//!   poisonous request class to exercise error queues.
//! * [`ticketing`] — requests whose replies drive the §3 non-idempotent
//!   ticket printer.
//! * [`arrivals`] — deterministic arrival processes (uniform and on/off
//!   bursts) and Zipf-like account selection for contention sweeps.

pub mod arrivals;
pub mod bank;
pub mod order_entry;
pub mod ticketing;
