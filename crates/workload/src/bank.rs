//! The bank: account table plus the §6 funds-transfer request.
//!
//! "A funds transfer request may be processed as three separate
//! transactions: debit source bank account, credit target bank account, and
//! log the transfer with a clearinghouse."
//!
//! The account table lives in the repository's durable store, so account
//! updates commit atomically with the queue operations of the stage
//! transactions. Balances may go negative (the paper's transfer is not an
//! authorization check) — conservation of total money is the invariant the
//! oracles verify.

use rrq_core::error::{CoreError, CoreResult};
use rrq_core::pipeline::{Pipeline, Serializability, StageFn, StageResult};
use rrq_core::request::Request;
use rrq_core::server::{Handler, HandlerError, HandlerOutcome, Server, ServerConfig, ServerCtx};
use rrq_qm::repository::Repository;
use rrq_storage::codec::{put, Reader};
use rrq_txn::LockKey;
use std::sync::Arc;

/// Lock namespace for account keys.
pub const BANK_NS: u32 = 7;

/// A transfer order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transfer {
    /// Source account index.
    pub from: u32,
    /// Target account index.
    pub to: u32,
    /// Amount in cents.
    pub amount: i64,
}

impl Transfer {
    /// Encode as a request body.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put::u32(&mut buf, self.from);
        put::u32(&mut buf, self.to);
        put::i64(&mut buf, self.amount);
        buf
    }

    /// Decode from a request body.
    pub fn decode(raw: &[u8]) -> CoreResult<Transfer> {
        let m = |e: rrq_storage::StorageError| CoreError::Malformed(e.to_string());
        let mut r = Reader::new(raw);
        Ok(Transfer {
            from: r.u32().map_err(m)?,
            to: r.u32().map_err(m)?,
            amount: r.i64().map_err(m)?,
        })
    }
}

fn account_key(i: u32) -> Vec<u8> {
    format!("bank/acct/{i:08}").into_bytes()
}

fn clearing_key(rid: &str) -> Vec<u8> {
    format!("bank/clearing/{rid}").into_bytes()
}

/// Create `n` accounts, each with `initial` cents (partition 0's store).
pub fn seed_accounts(repo: &Repository, n: u32, initial: i64) -> CoreResult<()> {
    seed_store(repo.store(), n, initial)
}

/// Create `n` accounts on the partition that owns `queue`, so a server
/// homed on that queue finds its working set partition-local.
pub fn seed_accounts_on(repo: &Repository, queue: &str, n: u32, initial: i64) -> CoreResult<()> {
    seed_store(repo.store_for(queue), n, initial)
}

fn seed_store(store: &Arc<rrq_storage::kv::KvStore>, n: u32, initial: i64) -> CoreResult<()> {
    let t = u64::MAX - 101;
    store.begin(t)?;
    for i in 0..n {
        store.put(t, &account_key(i), &initial.to_le_bytes())?;
    }
    store.commit(t)?;
    Ok(())
}

/// Read one balance (committed view), summed across partition stores.
///
/// A handler adjusts the copy on its *home* partition's store, so under a
/// partitioned repository an account's true balance is the sum of its
/// per-partition copies — each delta lands on exactly one store, which is
/// what keeps conservation partition-count-independent.
pub fn balance(repo: &Repository, i: u32) -> CoreResult<i64> {
    let mut sum = 0;
    for p in 0..repo.partitions() {
        sum += repo
            .store_at(p)
            .get(None, &account_key(i))?
            .map(|raw| i64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
            .unwrap_or(0);
    }
    Ok(sum)
}

/// Sum of all balances (the conservation invariant).
pub fn total_money(repo: &Repository, n: u32) -> CoreResult<i64> {
    let mut sum = 0;
    for i in 0..n {
        sum += balance(repo, i)?;
    }
    Ok(sum)
}

/// Number of clearinghouse log entries (one per completed transfer),
/// summed across partition stores.
pub fn clearing_count(repo: &Repository) -> CoreResult<usize> {
    let mut n = 0;
    for p in 0..repo.partitions() {
        n += repo.store_at(p).scan_prefix(None, b"bank/clearing/")?.len();
    }
    Ok(n)
}

/// Race-detector cell name of one account balance. Every mutation goes
/// through [`adjust`]'s exclusive lock; a write reported on this cell
/// without that lock is a bug (see the rrq-check negative test).
pub fn account_cell(i: u32) -> String {
    format!("bank/acct/{i:08}")
}

/// The lock key [`adjust`] takes for one account — the unit the planned
/// executor's access sets are made of.
pub fn account_lock_key(i: u32) -> LockKey {
    LockKey::new(BANK_NS, account_key(i))
}

/// Access-set oracle for the `transfer` op (planned execution): the exact
/// lock keys [`single_txn_handler`] will touch, derived from the request
/// alone. Requests with other ops (or undecodable bodies) return `None` —
/// unplannable, so the executor runs them solo with real locks.
pub fn transfer_access() -> rrq_core::planned::AccessFn {
    Arc::new(|req: &Request| {
        if req.op != "transfer" {
            return None;
        }
        let t = Transfer::decode(&req.body).ok()?;
        Some(vec![account_lock_key(t.from), account_lock_key(t.to)])
    })
}

fn adjust(ctx: &ServerCtx<'_>, account: u32, delta: i64) -> Result<(), HandlerError> {
    let key = account_key(account);
    ctx.txn
        .lock_exclusive(&LockKey::new(BANK_NS, key.clone()))
        .map_err(|e| HandlerError::Abort(e.to_string()))?;
    let txn = ctx.txn.id().raw();
    rrq_check::race::on_read(&account_cell(account));
    let bal = ctx
        .store()
        .get(Some(txn), &key)
        .map_err(|e| HandlerError::Abort(e.to_string()))?
        .map(|raw| i64::from_le_bytes(raw.try_into().unwrap_or([0; 8])))
        .unwrap_or(0);
    rrq_check::race::on_write(&account_cell(account));
    ctx.store()
        .put(txn, &key, &(bal + delta).to_le_bytes())
        .map_err(|e| HandlerError::Abort(e.to_string()))?;
    Ok(())
}

fn log_clearing(ctx: &ServerCtx<'_>, req: &Request, t: &Transfer) -> Result<(), HandlerError> {
    ctx.store()
        .put(
            ctx.txn.id().raw(),
            &clearing_key(&req.rid.to_attr()),
            &t.encode(),
        )
        .map_err(|e| HandlerError::Abort(e.to_string()))
}

/// Single-transaction transfer handler ("one long transaction", §6) for the
/// `transfer` op: debit + credit + clearinghouse log, all in one commit.
pub fn single_txn_handler() -> Handler {
    Arc::new(|ctx, req| {
        let t = Transfer::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        adjust(ctx, t.from, -t.amount)?;
        adjust(ctx, t.to, t.amount)?;
        log_clearing(ctx, req, &t)?;
        Ok(HandlerOutcome::Reply(b"transferred".to_vec()))
    })
}

/// Build the paper's three-transaction pipeline over `queues` (exactly 3):
/// stage 0 debits, stage 1 credits, stage 2 logs with the clearinghouse and
/// replies.
pub fn transfer_pipeline(queues: [&str; 3], mode: Serializability) -> Pipeline {
    let stage_fn: StageFn = Arc::new(move |ctx, req, i| {
        let t = Transfer::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        match i {
            0 => {
                adjust(ctx, t.from, -t.amount)?;
                Ok(StageResult::Next(b"debited".to_vec()))
            }
            1 => {
                adjust(ctx, t.to, t.amount)?;
                Ok(StageResult::Next(b"credited".to_vec()))
            }
            _ => {
                log_clearing(ctx, req, &t)?;
                Ok(StageResult::Done(b"transferred".to_vec()))
            }
        }
    });
    Pipeline {
        queues: queues.iter().map(|q| q.to_string()).collect(),
        stage_fn,
        mode,
    }
}

/// A transfer server that aborts with probability ~`abort_pct`% (driven by
/// the request serial, so it is deterministic): exercises retry/error-queue
/// paths under the bank workload.
pub fn flaky_transfer_handler(abort_every: u64) -> Handler {
    let inner = single_txn_handler();
    Arc::new(move |ctx, req| {
        if abort_every > 0 && req.rid.serial % abort_every == 0 {
            // Fail the first `retry` attempts of every abort_every-th
            // request: the element's abort count saves it eventually.
            let attempts = ctx
                .store()
                .get(
                    None,
                    &format!("bank/flaky/{}", req.rid.to_attr()).into_bytes(),
                )
                .ok()
                .flatten()
                .map(|v| v.first().copied().unwrap_or(0))
                .unwrap_or(0);
            if attempts < 2 {
                // Track attempts outside the aborting transaction.
                let t = u64::MAX - 3000 - req.rid.serial;
                let _ = ctx.store().begin(t);
                let _ = ctx.store().put(
                    t,
                    &format!("bank/flaky/{}", req.rid.to_attr()).into_bytes(),
                    &[attempts + 1],
                );
                let _ = ctx.store().commit(t);
                return Err(HandlerError::Abort("injected fault".into()));
            }
        }
        inner(ctx, req)
    })
}

/// Compensation server for cancelled transfers (§7 sagas): handles
/// `undo-debit` / `undo-credit` ops by applying the inverse adjustment.
pub fn compensation_server(repo: &Arc<Repository>, queue: &str) -> CoreResult<Arc<Server>> {
    let handler: Handler = Arc::new(|ctx, req| {
        let t = Transfer::decode(&req.body).map_err(|e| HandlerError::Reject(e.to_string()))?;
        match req.op.as_str() {
            "undo-debit" => adjust(ctx, t.from, t.amount)?,
            "undo-credit" => adjust(ctx, t.to, -t.amount)?,
            other => {
                return Err(HandlerError::Reject(format!(
                    "unknown compensation {other}"
                )))
            }
        }
        Ok(HandlerOutcome::Reply(b"compensated".to_vec()))
    });
    Server::new(
        Arc::clone(repo),
        ServerConfig::new("compensator", queue),
        handler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrq_core::api::{LocalQm, QmApi};
    use rrq_core::request::Reply;
    use rrq_core::rid::Rid;
    use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
    use rrq_storage::codec::{Decode, Encode};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn transfer_codec_roundtrip() {
        let t = Transfer {
            from: 1,
            to: 2,
            amount: -500,
        };
        assert_eq!(Transfer::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn single_txn_transfer_conserves_money() {
        let repo = Arc::new(Repository::create("bank1").unwrap());
        repo.create_queue_defaults("req").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_accounts(&repo, 4, 10_000).unwrap();

        let server = Server::new(
            Arc::clone(&repo),
            ServerConfig::new("s", "req"),
            single_txn_handler(),
        )
        .unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("req", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let t = Transfer {
            from: 0,
            to: 3,
            amount: 2_500,
        };
        let req = Request::new(Rid::new("c", 1), "reply.c", "transfer", t.encode());
        api.enqueue("req", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.body, b"transferred");
        assert_eq!(balance(&repo, 0).unwrap(), 7_500);
        assert_eq!(balance(&repo, 3).unwrap(), 12_500);
        assert_eq!(total_money(&repo, 4).unwrap(), 40_000);
        assert_eq!(clearing_count(&repo).unwrap(), 1);

        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }

    #[test]
    fn pipelined_transfer_conserves_money() {
        let repo = Arc::new(Repository::create("bank3").unwrap());
        for q in ["xfer0", "xfer1", "xfer2", "reply.c"] {
            repo.create_queue_defaults(q).unwrap();
        }
        seed_accounts(&repo, 2, 1_000).unwrap();
        let pipeline = transfer_pipeline(["xfer0", "xfer1", "xfer2"], Serializability::None);
        let servers = pipeline.build_servers(&repo).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = servers.iter().map(|s| s.spawn(Arc::clone(&stop))).collect();

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("xfer0", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let t = Transfer {
            from: 0,
            to: 1,
            amount: 300,
        };
        let req = Request::new(Rid::new("c", 1), "reply.c", "transfer", t.encode());
        api.enqueue(
            "xfer0",
            "c",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();
        let elem = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        let reply = Reply::decode_all(&elem.payload).unwrap();
        assert_eq!(reply.body, b"transferred");
        assert_eq!(balance(&repo, 0).unwrap(), 700);
        assert_eq!(balance(&repo, 1).unwrap(), 1_300);
        assert_eq!(total_money(&repo, 2).unwrap(), 2_000);
        assert_eq!(clearing_count(&repo).unwrap(), 1);

        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn compensation_reverses_a_stage() {
        let repo = Arc::new(Repository::create("bank-comp").unwrap());
        repo.create_queue_defaults("comp").unwrap();
        repo.create_queue_defaults("reply.c").unwrap();
        seed_accounts(&repo, 2, 1_000).unwrap();
        // Simulate: debit committed (stage 0), then the request is
        // cancelled; the compensation credits the money back.
        let t_raw = u64::MAX - 500;
        repo.store().begin(t_raw).unwrap();
        repo.store()
            .put(t_raw, &account_key(0), &700i64.to_le_bytes())
            .unwrap();
        repo.store().commit(t_raw).unwrap();
        assert_eq!(total_money(&repo, 2).unwrap(), 1_700, "mid-request");

        let server = compensation_server(&repo, "comp").unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let h = server.spawn(Arc::clone(&stop));

        let api = LocalQm::new(Arc::clone(&repo));
        api.register("comp", "c", false).unwrap();
        api.register("reply.c", "c", false).unwrap();
        let t = Transfer {
            from: 0,
            to: 1,
            amount: 300,
        };
        let req = Request::new(Rid::new("c", 9), "reply.c", "undo-debit", t.encode());
        api.enqueue("comp", "c", &req.encode_to_vec(), EnqueueOptions::default())
            .unwrap();
        let _ = api
            .dequeue(
                "reply.c",
                "c",
                DequeueOptions {
                    block: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(balance(&repo, 0).unwrap(), 1_000, "debit undone");
        assert_eq!(total_money(&repo, 2).unwrap(), 2_000);

        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
