#!/usr/bin/env bash
# Full local CI pipeline: formatting, lints (clippy + rrq-lint), and the
# tier-1 build/test cycle. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== rrq-lint"
cargo run --release -p rrq-check --bin rrq-lint

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --release

echo "CI OK"
