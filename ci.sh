#!/usr/bin/env bash
# Full local CI pipeline: formatting, lints (clippy + rrq-lint), the
# rrq-analyze static analyzer, and the tier-1 build/test cycle. Run from
# the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== rrq-lint"
cargo run --release -p rrq-check --bin rrq-lint

echo "== rrq-analyze (lock-order, no-block-under-guard, durability-dominator, relaxed-ordering)"
# Whole-workspace analyzer over the LOCKS.md catalogue; findings carry the
# witnessing acquisition chain. See DESIGN.md §22.
cargo run --release -p rrq-check --bin rrq-analyze

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --release

echo "== E18 contention smoke (striped vs single-mutex at 4 workers)"
# Asserts striped throughput is no worse than the shards=1 baseline on the
# shared-queue bank workload (full sweep: experiments -- e18).
cargo run --release -p rrq-bench --bin experiments -q -- e18 --smoke

echo "== E19 partitioned-WAL smoke (parallel recovery + single-partition baseline)"
# Asserts recovery over 4 shard logs is >= 2x faster than the monolithic
# scan on per-read-latency devices, and that a wal_partitions=1 store holds
# >= 0.95x the KvStore::open baseline throughput (full sweep: experiments -- e19).
cargo run --release -p rrq-bench --bin experiments -q -- e19 --smoke

echo "== E20 combining-dequeue smoke (flat-combining vs baseline at 8 dequeuers)"
# Asserts the combining front end drains a hot queue >= 1.2x faster than the
# race-the-index baseline at 8 dequeuers and hands out disjoint candidates
# (skip rate < 0.1 vs ~n-1 baseline). Full sweep: experiments -- e20.
cargo run --release -p rrq-bench --bin experiments -q -- e20 --smoke

echo "== E21 repo-partition smoke (shared-nothing scaling, 4 vs 1 partitions)"
# Asserts 4 shared-nothing repository partitions push >= 1.5x the 1-partition
# rate on the bank workload at 0% cross-partition traffic, every commit
# forcing a 100us WAL write (full sweep: experiments -- e21).
cargo run --release -p rrq-bench --bin experiments -q -- e21 --smoke

echo "== E22 planned-execution smoke (contention crossover + locked-baseline tripwire)"
# Asserts the planned pool beats the full 2PL stack (group commit + flat
# combining) >= 1.2x at 100% hot-pair traffic, and that the exec_mode-knob
# locked cell holds >= 0.95x of the pre-PR plain-constructor baseline
# (full sweep: experiments -- e22).
cargo run --release -p rrq-bench --bin experiments -q -- e22 --smoke

echo "== explorer smoke sweep (200 fixed-seed fault scripts)"
# Deterministic: any failure prints the seed and a replayable script path
# (replay with: cargo run --release -p rrq-bench --bin explore -- --replay <path>).
cargo run --release -p rrq-bench --bin explore -- \
  --scripts 200 --seed 1 --budget-secs 240 --out target/explorer-failures

echo "== explorer partitioned sweep (200 scripts, wal_partitions=4, per-log torn tails)"
# Same fixed seeds, four shard logs: scripts tear random log subsets and the
# conservation oracles must stay green across every recovery.
cargo run --release -p rrq-bench --bin explore -- \
  --scripts 200 --seed 1 --budget-secs 240 --wal-partitions 4 \
  --out target/explorer-failures-p4

echo "== explorer combining sweep (200 scripts, dequeue_combining on)"
# Same fixed seeds with every dequeue routed through the flat-combining
# dispenser; crashes land mid-combine and the oracle battery must stay
# green (the dispenser is volatile — recovery restarts it empty).
cargo run --release -p rrq-bench --bin explore -- \
  --scripts 200 --seed 1 --budget-secs 240 --dequeue-combining \
  --out target/explorer-failures-comb

echo "== explorer shared-nothing sweep (200 scripts, repo_partitions=4)"
# Same fixed seeds against four shared-nothing repository partitions: clerks
# route per queue, partition-scoped crashes and single-pair cuts land mid
# protocol, and the oracle battery must stay green across every recovery.
cargo run --release -p rrq-bench --bin explore -- \
  --scripts 200 --seed 1 --budget-secs 240 --repo-partitions 4 \
  --out target/explorer-failures-repo4

echo "== explorer planned-execution sweep (200 scripts, exec_mode=planned)"
# Same fixed seeds with the dequeue-loop servers replaced by the epoch-
# batched planned pool: crashes land inside plan, execute, and epoch-commit
# windows and the oracle battery must stay green across every recovery.
cargo run --release -p rrq-bench --bin explore -- \
  --scripts 200 --seed 1 --budget-secs 240 --exec-mode planned \
  --out target/explorer-failures-planned

echo "CI OK"
