//! Minimal offline shim for the `proptest` API surface this workspace uses.
//!
//! Differences from real proptest, by design:
//! - no shrinking: a failing case panics with the generated inputs so the
//!   values can be pasted into a focused unit test;
//! - deterministic: case `i` of every test draws from a fixed seed mixed
//!   with `i`, so failures reproduce across runs.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator for one test case.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x5252_515F_5345_4544 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (not counted as failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed property with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Runner configuration; only `cases` matters in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for producing values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )+};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each element drawn from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest-style test file expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests. Each case draws fresh inputs from the argument
/// strategies; a returned `Err` or failed `prop_assert!` panics with the
/// case number and the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let mut inputs = String::new();
                    $(inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) = outcome {
                        panic!(
                            "proptest case {case} of {}: {msg}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Weighted (`w => strat`) or unweighted choice among strategies with the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Cmd {
        Push(u8),
        Pop,
    }

    fn cmd_strategy() -> impl Strategy<Value = Cmd> {
        prop_oneof![
            3 => (0u8..10).prop_map(Cmd::Push),
            1 => Just(Cmd::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(
            pair in (0u8..4, 1usize..9),
            frac in 0.0f64..1.0,
            bytes in crate::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!((1..9).contains(&pair.1), "len {} out of range", pair.1);
            prop_assert!((0.0..1.0).contains(&frac));
            prop_assert!(bytes.len() < 16);
        }

        /// A model interpreter over generated commands.
        #[test]
        fn stack_model(cmds in crate::collection::vec(cmd_strategy(), 1..40)) {
            let mut stack = Vec::new();
            let mut max_seen = 0usize;
            for c in &cmds {
                match c {
                    Cmd::Push(v) => stack.push(*v),
                    Cmd::Pop => { stack.pop(); }
                }
                max_seen = max_seen.max(stack.len());
            }
            prop_assert!(max_seen <= cmds.len());
            prop_assert_eq!(stack.len().min(1), if stack.is_empty() { 0 } else { 1 });
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        inner();
    }
}
