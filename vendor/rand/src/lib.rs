//! Minimal offline shim for the `rand` API surface this workspace uses:
//! `Rng::gen`, `gen_range`, `gen_bool`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. Deterministic xoshiro256++ seeded via SplitMix64 — not
//! cryptographic, fine for fault injection and tests.

/// Types that can be sampled uniformly from a generator.
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Sample a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Generators that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(5..10);
            assert!((5..10).contains(&x));
        }
    }
}
