//! Minimal offline shim for the `criterion` API surface this workspace's
//! benches use. Reports a wall-clock mean per benchmark — no statistics,
//! no plots — so `cargo bench --features bench-harness` stays meaningful
//! in an offline container.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long each benchmark's measurement loop runs.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

/// Identifier for one parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify a benchmark by its parameter value alone.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identify a benchmark by function name and parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// How `iter_batched` sizes its setup batches (ignored by this shim —
/// setup always runs once per iteration, i.e. `PerIteration` semantics).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn run(mut body: impl FnMut(&mut Bencher)) -> (Duration, u64) {
        // Warm-up pass, discarded.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let start = Instant::now();
        while start.elapsed() < WARMUP_BUDGET {
            body(&mut b);
        }
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            body(&mut b);
        }
        (b.elapsed, b.iters)
    }

    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    /// Time `routine` on inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn report(group: &str, name: &str, throughput: Option<Throughput>, elapsed: Duration, iters: u64) {
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => {
            let mbps = b as f64 * iters as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mbps:10.1} MiB/s")
        }
        Throughput::Elements(e) => {
            let eps = e as f64 * iters as f64 / elapsed.as_secs_f64();
            format!("  {eps:10.0} elem/s")
        }
    });
    println!(
        "{label:<48} {:>12.0} ns/iter ({iters} iters){}",
        per_iter,
        rate.unwrap_or_default()
    );
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: impl fmt::Display, body: impl FnMut(&mut Bencher)) {
        let (elapsed, iters) = Bencher::run(body);
        report("", &name.to_string(), None, elapsed, iters);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Hint for the sample count (ignored by this shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (elapsed, iters) = Bencher::run(body);
        report(
            &self.name,
            &name.to_string(),
            self.throughput,
            elapsed,
            iters,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (elapsed, iters) = Bencher::run(|b| body(b, input));
        report(&self.name, &id.to_string(), self.throughput, elapsed, iters);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let (elapsed, iters) = Bencher::run(|b| b.iter(|| black_box(2u64 + 2)));
        assert!(iters > 0);
        assert!(elapsed <= MEASURE_BUDGET * 2);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
