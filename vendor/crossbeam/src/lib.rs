//! Minimal offline shim for `crossbeam::channel`: an unbounded MPMC channel
//! over `Mutex<VecDeque>` + `Condvar`. Only the surface this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected (no receivers remain).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a blocking receive gave up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the window.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// All senders are gone and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if g.receivers == 0 {
                return Err(SendError(value));
            }
            g.items.push_back(value);
            drop(g);
            self.shared.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.shared.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match g.items.pop_front() {
                Some(v) => Ok(v),
                None if g.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = g.items.pop_front() {
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Receive, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = g.items.pop_front() {
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (ng, _res) = self
                    .shared
                    .cv
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                g = ng;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx2, rx2) = unbounded::<u8>();
            drop(rx2);
            assert_eq!(tx2.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42u64).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }
    }
}
