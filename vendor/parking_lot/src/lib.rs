//! Minimal offline shim for the `parking_lot` API surface this workspace
//! uses: `Mutex`, `RwLock`, and `Condvar` without lock poisoning.
//!
//! Backed by `std::sync`; a poisoned std lock (a thread panicked while
//! holding it) is recovered transparently, matching parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard by value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    poisoned: &'a AtomicBool,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

static NEVER_POISONED: AtomicBool = AtomicBool::new(false);

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            inner: Some(guard),
            poisoned: &NEVER_POISONED,
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                poisoned: &NEVER_POISONED,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
                poisoned: &NEVER_POISONED,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// The `poisoned` field exists only to keep MutexGuard's layout honest about
// lifetimes; silence the dead-code lint without a world of cfgs.
impl<T: ?Sized> MutexGuard<'_, T> {
    #[doc(hidden)]
    pub fn __never_poisoned(&self) -> bool {
        !self.poisoned.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
