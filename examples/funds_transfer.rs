//! The §6 funds transfer as a three-transaction pipeline — with a server
//! node crash in the middle of the run.
//!
//! Run with:
//! ```sh
//! cargo run --release -p rrq-bench --example funds_transfer
//! ```
//!
//! Each transfer executes as {debit source} → {credit target} → {log with
//! clearinghouse}, each its own transaction chained through queues. The node
//! is crashed mid-run; requests resume from their last committed stage, and
//! the example verifies total money is conserved and every transfer cleared
//! exactly once.

use rrq_core::api::{LocalQm, QmApi};
use rrq_core::pipeline::Serializability;
use rrq_core::request::Request;
use rrq_core::rid::Rid;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_sim::node::{ServerFactory, ServerNodeSim};
use rrq_storage::codec::Encode;
use rrq_workload::bank::{self, Transfer};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ACCOUNTS: u32 = 8;
const TRANSFERS: u64 = 24;
const INITIAL: i64 = 100_000;

fn main() {
    let factory: ServerFactory = Arc::new(|repo| {
        bank::transfer_pipeline(
            ["xfer.debit", "xfer.credit", "xfer.clear"],
            Serializability::None,
        )
        .build_servers(repo)
    });
    let mut node = ServerNodeSim::with_factory(
        "bank",
        vec![
            "xfer.debit".into(),
            "xfer.credit".into(),
            "xfer.clear".into(),
            "reply.teller".into(),
        ],
        factory,
    );
    node.start().expect("boot bank node");
    bank::seed_accounts(&node.repo(), ACCOUNTS, INITIAL).expect("seed accounts");
    println!(
        "seeded {ACCOUNTS} accounts; total = {}",
        bank::total_money(&node.repo(), ACCOUNTS).unwrap()
    );

    // Submit the batch of transfers.
    let api = LocalQm::new(node.repo());
    api.register("xfer.debit", "teller", false).unwrap();
    for i in 0..TRANSFERS {
        let t = Transfer {
            from: (i % ACCOUNTS as u64) as u32,
            to: ((i + 3) % ACCOUNTS as u64) as u32,
            amount: 250,
        };
        let req = Request::new(
            Rid::new("teller", i + 1),
            "reply.teller",
            "transfer",
            t.encode(),
        );
        api.enqueue(
            "xfer.debit",
            "teller",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();
    }
    println!("submitted {TRANSFERS} transfers");

    // Let the pipeline run briefly, then pull the plug on the whole node.
    std::thread::sleep(Duration::from_millis(50));
    println!("*** crashing the bank node mid-run ***");
    node.crash();
    let report = node.start().expect("recover bank node");
    println!(
        "recovered: {} committed txns replayed from the log",
        report.committed_txns
    );

    // Collect every reply.
    let api = LocalQm::new(node.repo());
    api.register("reply.teller", "teller", false).unwrap();
    let mut received = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while received < TRANSFERS {
        assert!(
            Instant::now() < deadline,
            "stalled at {received}/{TRANSFERS}"
        );
        if api
            .dequeue(
                "reply.teller",
                "teller",
                DequeueOptions {
                    block: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            )
            .is_ok()
        {
            received += 1;
        }
    }

    let repo = node.repo();
    let total = bank::total_money(&repo, ACCOUNTS).unwrap();
    let cleared = bank::clearing_count(&repo).unwrap();
    println!("replies received : {received}");
    println!(
        "total money      : {total} (expected {})",
        INITIAL * ACCOUNTS as i64
    );
    println!("clearing entries : {cleared} (expected {TRANSFERS})");
    assert_eq!(total, INITIAL * ACCOUNTS as i64, "conservation violated");
    assert_eq!(cleared as u64, TRANSFERS, "exactly-once clearing violated");
    println!("OK: money conserved and every transfer cleared exactly once, despite the crash");
}
