//! A §8 interactive request: booking a trip through a three-round
//! pseudo-conversational exchange.
//!
//! Run with:
//! ```sh
//! cargo run --release -p rrq-bench --example interactive_booking
//! ```
//!
//! Each intermediate output is a committed reply and each intermediate input
//! is a request for the next transaction in the sequence, so no answer is
//! ever lost to a failure once the next prompt has been seen.

use rrq_core::api::LocalQm;
use rrq_core::interactive::InteractiveClient;
use rrq_core::request::Request;
use rrq_core::rid::Rid;
use rrq_core::server::{Handler, HandlerOutcome, Server, ServerConfig};
use rrq_qm::repository::Repository;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn stage_handler(stage: usize) -> Handler {
    Arc::new(move |_ctx, req: &Request| match stage {
        0 => Ok(HandlerOutcome::IntermediateReply {
            body: b"Where would you like to go?".to_vec(),
            next_queue: "book.s1".into(),
            state: b"booking".to_vec(),
        }),
        1 => {
            let mut state = req.state.clone();
            state.extend_from_slice(b" to=");
            state.extend_from_slice(&req.body);
            Ok(HandlerOutcome::IntermediateReply {
                body: b"Window or aisle?".to_vec(),
                next_queue: "book.s2".into(),
                state,
            })
        }
        _ => {
            let mut state = req.state.clone();
            state.extend_from_slice(b" seat=");
            state.extend_from_slice(&req.body);
            state.extend_from_slice(b" [CONFIRMED]");
            Ok(HandlerOutcome::Reply(state))
        }
    })
}

fn main() {
    let repo = Arc::new(Repository::create("booking").expect("create repository"));
    for q in ["book.s0", "book.s1", "book.s2", "reply.kiosk"] {
        repo.create_queue_defaults(q).expect("create queue");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for (i, q) in ["book.s0", "book.s1", "book.s2"].iter().enumerate() {
        let s = Server::new(
            Arc::clone(&repo),
            ServerConfig::new(format!("booking-s{i}"), *q),
            stage_handler(i),
        )
        .expect("build stage server");
        handles.push(s.spawn(Arc::clone(&stop)));
    }

    let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
    let kiosk = InteractiveClient::new(api, "kiosk", "reply.kiosk");

    // The scripted "user" at the display.
    let answers = ["reykjavik", "window"];
    let mut cursor = 0usize;
    let outcome = kiosk
        .run(
            "book.s0",
            Rid::new("kiosk", 1),
            "book-trip",
            b"new booking".to_vec(),
            |prompt| {
                let answer = answers[cursor];
                cursor += 1;
                println!("  system: {}", String::from_utf8_lossy(prompt));
                println!("  user  : {answer}");
                answer.as_bytes().to_vec()
            },
        )
        .expect("conversation");

    println!("rounds of intermediate I/O: {}", outcome.rounds);
    println!(
        "final reply: {}",
        String::from_utf8_lossy(&outcome.reply.body)
    );
    assert_eq!(outcome.rounds, 2);
    assert!(outcome.reply.body.ends_with(b"[CONFIRMED]"));

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    println!("OK: interactive request completed via pseudo-conversational transactions");
}
