//! Quickstart: a complete client/server round trip on recoverable queues.
//!
//! Run with:
//! ```sh
//! cargo run --release -p rrq-bench --example quickstart
//! ```
//!
//! The flow is the paper's Fig 4/5 system model: the client's clerk enqueues
//! a request, a server processes it inside one transaction (dequeue →
//! handle → enqueue reply → commit), and the client receives the reply —
//! with everything recoverable at each step.

use rrq_core::api::LocalQm;
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::client::{ClientRuntime, ResyncAction};
use rrq_core::device::Display;
use rrq_core::server::spawn_pool;
use rrq_qm::repository::Repository;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() {
    // 1. One node with a request queue and the client's private reply queue.
    let repo = Arc::new(Repository::create("quickstart").expect("create repository"));
    repo.create_queue_defaults("req").expect("create req queue");
    repo.create_queue_defaults("reply.alice")
        .expect("create reply queue");

    // 2. A pool of two servers sharing the request queue (§1 load sharing).
    let handler: rrq_core::server::Handler = Arc::new(|_ctx, req| {
        Ok(rrq_core::server::HandlerOutcome::Reply(
            format!("hello, {}!", String::from_utf8_lossy(&req.body)).into_bytes(),
        ))
    });
    let (_servers, handles, stop) =
        spawn_pool(&repo, "req", 2, handler).expect("spawn server pool");

    // 3. The client: clerk + Fig 2 runtime + an idempotent display.
    let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
    let clerk = Clerk::new(api, ClerkConfig::new("alice", "req"));
    let mut runtime = ClientRuntime::new(clerk);
    let mut display = Display::new();

    let action = runtime.resume(&mut display).expect("connect + resync");
    assert_eq!(action, ResyncAction::Fresh);
    println!("connected; resync action: {action:?}");

    // 4. Submit a few requests; each reply is matched to its request id.
    for name in ["world", "queue", "recoverable request"] {
        let (rid, reply) = runtime
            .submit("greet", name.as_bytes().to_vec(), &mut display)
            .expect("submit");
        println!("{rid} -> {}", String::from_utf8_lossy(&reply.body));
    }

    // 5. Rereceive: the QM retains the last reply even after its dequeue.
    let again = runtime.clerk().rereceive().expect("rereceive");
    println!(
        "rereceive of last reply: {}",
        String::from_utf8_lossy(&again.body)
    );

    runtime.disconnect().expect("disconnect");
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "done; display showed {} replies, {} duplicates ignored",
        display.shown().len(),
        display.duplicates_ignored()
    );
}
