//! §1 batch input and load sharing: orders are captured reliably while no
//! server is running, an alert fires when the backlog crosses its threshold,
//! and a pool of servers later shares the drain work.
//!
//! Run with:
//! ```sh
//! cargo run --release -p rrq-bench --example batch_orders
//! ```

use rrq_core::api::{LocalQm, QmApi};
use rrq_core::request::{Reply, ReplyStatus, Request};
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_qm::meta::QueueMeta;
use rrq_qm::ops::{DequeueOptions, EnqueueOptions};
use rrq_qm::repository::Repository;
use rrq_storage::codec::{Decode, Encode};
use rrq_workload::order_entry::{self, Order};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const ORDERS: u64 = 40;
const ITEMS: u32 = 5;

fn main() {
    let repo = Arc::new(Repository::create("orders-node").expect("create repository"));
    let mut meta = QueueMeta::with_defaults("orders");
    meta.alert_threshold = Some(25); // §9 alert threshold
    repo.qm().create_queue(meta).expect("create orders queue");
    repo.create_queue_defaults("reply.shop")
        .expect("reply queue");
    order_entry::seed_inventory(&repo, ITEMS, 1_000).expect("seed inventory");

    // Phase 1: capture a batch with NO servers running at all.
    let api = LocalQm::new(Arc::clone(&repo));
    api.register("orders", "shop", false).unwrap();
    api.register("reply.shop", "shop", false).unwrap();
    for i in 0..ORDERS {
        let order = Order {
            item: (i % ITEMS as u64) as u32,
            qty: 1 + (i % 3) as u32,
        };
        let req = Request::new(
            Rid::new("shop", i + 1),
            "reply.shop",
            "order",
            order.encode(),
        );
        api.enqueue(
            "orders",
            "shop",
            &req.encode_to_vec(),
            EnqueueOptions::default(),
        )
        .unwrap();
    }
    println!(
        "captured {} orders with no server running",
        api.depth("orders").unwrap()
    );
    let alerts = repo.qm().take_alerts();
    println!("alerts raised while batching: {alerts:?}");
    assert!(
        alerts.contains(&"orders".to_string()),
        "threshold alert expected"
    );

    // Phase 2: bring up a pool of 4 servers; they share the drain.
    let (servers, handles, stop) =
        spawn_pool(&repo, "orders", 4, order_entry::order_handler()).expect("spawn pool");
    let mut ok = 0u64;
    for _ in 0..ORDERS {
        let elem = api
            .dequeue(
                "reply.shop",
                "shop",
                DequeueOptions {
                    block: Some(Duration::from_secs(30)),
                    ..Default::default()
                },
            )
            .expect("reply");
        let reply = Reply::decode_all(&elem.payload).unwrap();
        if reply.status == ReplyStatus::Ok {
            ok += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    println!("orders fulfilled: {ok}/{ORDERS}");
    let shares: Vec<u64> = servers.iter().map(|s| s.stats().committed).collect();
    println!("per-server shares: {shares:?}");
    assert_eq!(ok, ORDERS);
    assert!(
        shares.iter().filter(|&&n| n > 0).count() >= 2,
        "load sharing: more than one server did work"
    );
    for i in 0..ITEMS {
        println!(
            "item {i}: stock remaining {}",
            order_entry::stock(&repo, i).unwrap()
        );
    }
    println!("OK: batch captured, alert raised, drained by a shared pool");
}
