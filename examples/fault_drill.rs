//! The full §3 fault drill: a client printing tickets (a non-idempotent
//! device) crashes at every possible point of the protocol; the Fig 2
//! resynchronization keeps everything exactly-once.
//!
//! Run with:
//! ```sh
//! cargo run --release -p rrq-bench --example fault_drill
//! ```

use rrq_core::api::LocalQm;
use rrq_core::clerk::{Clerk, ClerkConfig};
use rrq_core::device::TicketPrinter;
use rrq_core::rid::Rid;
use rrq_core::server::spawn_pool;
use rrq_qm::repository::Repository;
use rrq_sim::driver::{ClientCrashDriver, CrashPoint};
use rrq_sim::oracle::EffectLedger;
use rrq_sim::schedule::CrashSchedule;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const N: u64 = 15;

fn main() {
    let repo = Arc::new(Repository::create("drill").expect("create repository"));
    repo.create_queue_defaults("req").unwrap();
    repo.create_queue_defaults("reply.till").unwrap();

    // A booking server instrumented with the exactly-once effect ledger.
    let handler = EffectLedger::instrument(Arc::new(|_ctx, req| {
        Ok(rrq_core::server::HandlerOutcome::Reply(
            format!("ticket for {}", req.rid).into_bytes(),
        ))
    }));
    let (_servers, handles, stop) = spawn_pool(&repo, "req", 2, handler).unwrap();

    // Crash after EVERY send, receive, and process in turn, plus a random mix.
    let schedule = CrashSchedule::random(N, 0.6, 2026);
    println!(
        "injecting {} client crashes across {N} requests",
        schedule.len()
    );

    let make_clerk = || {
        let api = Arc::new(LocalQm::new(Arc::clone(&repo)));
        let mut cfg = ClerkConfig::new("till", "req");
        cfg.reply_queue = "reply.till".into();
        cfg.receive_block = Duration::from_secs(10);
        Clerk::new(api, cfg)
    };
    let driver = ClientCrashDriver::new(make_clerk, "book");
    let mut printer = TicketPrinter::new();
    let report = driver
        .run(
            N,
            |s| schedule.get(s),
            |s| format!("seat-{s}").into_bytes(),
            &mut printer,
        )
        .expect("drill run");

    println!("client incarnations         : {}", report.incarnations);
    println!("replies completed           : {}", report.completed);
    println!("resync: received outstanding: {}", report.resync_received);
    println!(
        "resync: reprocessed (rerecv): {}",
        report.resync_reprocessed
    );
    println!(
        "resync: already processed   : {}",
        report.resync_already_processed
    );
    println!("tickets printed             : {}", printer.printed().len());

    // The oracles.
    let expected: Vec<Rid> = (1..=N).map(|s| Rid::new("till", s)).collect();
    let violations = EffectLedger::violations(&repo, &expected).unwrap();
    assert!(
        violations.is_empty(),
        "exactly-once violated: {violations:?}"
    );
    assert!(
        !printer.has_duplicate_prints(),
        "a ticket was printed twice!"
    );
    assert_eq!(report.completed, N);

    // Show how a crash AFTER processing is distinguished from one BEFORE:
    let schedule2 = CrashSchedule::every(3, CrashPoint::AfterProcess);
    let repo2 = Arc::new(Repository::create("drill2").unwrap());
    repo2.create_queue_defaults("req").unwrap();
    repo2.create_queue_defaults("reply.till").unwrap();
    let (_s2, h2, stop2) = spawn_pool(
        &repo2,
        "req",
        1,
        Arc::new(|_ctx, req: &rrq_core::request::Request| {
            Ok(rrq_core::server::HandlerOutcome::Reply(req.body.clone()))
        }),
    )
    .unwrap();
    let make_clerk2 = || {
        let api = Arc::new(LocalQm::new(Arc::clone(&repo2)));
        let mut cfg = ClerkConfig::new("till", "req");
        cfg.reply_queue = "reply.till".into();
        Clerk::new(api, cfg)
    };
    let driver2 = ClientCrashDriver::new(make_clerk2, "book");
    let mut printer2 = TicketPrinter::new();
    let report2 = driver2
        .run(3, |s| schedule2.get(s), |s| vec![s as u8], &mut printer2)
        .unwrap();
    assert_eq!(report2.resync_already_processed, 3);
    assert!(!printer2.has_duplicate_prints());
    println!(
        "\ntestable-device check: {} crashes after processing, {} duplicate prints",
        3, 0
    );
    stop2.store(true, Ordering::Relaxed);
    for h in h2 {
        h.join().unwrap();
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    println!("OK: exactly-once request processing and exactly-once printing survived the drill");
}
